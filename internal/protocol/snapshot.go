package protocol

import (
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"omtree/internal/coords"
	"omtree/internal/core"
	"omtree/internal/faultplane"
	"omtree/internal/geom"
	"omtree/internal/grid"
	"omtree/internal/obs"
	"omtree/internal/snapshot"
)

// Crash-safe session state (DESIGN.md §2k). WriteSnapshot serializes the
// complete observable state of a session — configuration, per-node protocol
// state, cell membership, admission queue, the retained build state with
// its frozen certificate, the drift model's trajectories, and the round
// clock (Stats.MaintenanceRounds) — into the envelope defined by
// internal/snapshot. Restore reconstructs a session that re-encodes to the
// identical bytes and resumes MaintenanceRound at the recorded round.
//
// Observers are deliberately not serialized: the transport, metrics
// registry, trace recorder, flight recorder, and kill plan are process
// attachments, not overlay state, and a restarted coordinator reattaches
// fresh ones (SetTransport, Observe, Trace, SetFlight, SetKillPlan).

// SnapshotConfig schedules periodic snapshots from MaintenanceRound: every
// Interval rounds the end-of-round state is rotated and written atomically
// to Path. The zero value disables scheduling; WriteSnapshot and
// SnapshotToFile stay available for on-demand checkpoints.
type SnapshotConfig struct {
	// Interval is the number of maintenance rounds between scheduled
	// snapshots; > 0 enables them.
	Interval int
	// Path is the snapshot destination. Each write goes through the
	// temp-file + fsync + rename discipline, so a crash mid-write leaves
	// the previous snapshot intact.
	Path string
	// KeepLast rotates earlier snapshots to Path.1, Path.2, ... keeping
	// the newest KeepLast files in total; <= 1 keeps only Path itself.
	KeepLast int
}

// Enabled reports whether MaintenanceRound writes scheduled snapshots.
func (c SnapshotConfig) Enabled() bool { return c.Interval > 0 }

// validate rejects malformed configurations; the zero value is valid.
func (c SnapshotConfig) validate() error {
	if c == (SnapshotConfig{}) {
		return nil
	}
	if c.Interval < 1 {
		return fmt.Errorf("protocol: snapshot Interval %d < 1 (rounds between scheduled snapshots)", c.Interval)
	}
	if c.Path == "" {
		return fmt.Errorf("protocol: snapshot Interval set without a Path to write to")
	}
	if c.KeepLast < 0 {
		return fmt.Errorf("protocol: snapshot KeepLast %d negative", c.KeepLast)
	}
	return nil
}

// SetKillPlan attaches a crash schedule: instrumented operations
// (WriteSnapshot, SnapshotToFile, Rebuild, reconciliation) abort with the
// plan's *faultplane.KilledError when a scheduled kill point fires,
// leaving state exactly as the crash found it. Passing nil detaches the
// plan. One plan models one process lifetime; install a fresh plan after a
// simulated restart for another crash.
func (o *Overlay) SetKillPlan(p *faultplane.KillPlan) { o.kill = p }

// killpoint crosses a named kill point; a non-nil return is the simulated
// process death, threaded up the caller's return path (never a panic).
func (o *Overlay) killpoint(name string) error {
	if err := o.kill.At(name); err != nil {
		o.emit("protocol/killed", -1, -1, name)
		return err
	}
	return nil
}

// statsFields lists every SessionStats field once, in declaration order —
// the single source of truth for the stats section of the payload, so the
// encoder and decoder cannot drift apart.
func statsFields(s *SessionStats) []*int {
	return []*int{
		&s.Joins, &s.Leaves, &s.JoinMessages, &s.LeaveMessages,
		&s.RepElections, &s.FallbackScans, &s.OptimizeMessages,
		&s.Rebuilds, &s.IncrementalRebuilds, &s.RebuildMessages,
		&s.AbruptFailures, &s.Attempts, &s.AttemptsDelivered,
		&s.Retries, &s.Timeouts, &s.MessagesLost, &s.DuplicatesDelivered,
		&s.InjectedCrashes, &s.Heartbeats, &s.MaintenanceRounds,
		&s.MaintenanceMessages, &s.FalseSuspects, &s.FalseConfirms,
		&s.OrphanNodeRounds, &s.DegradedSubtrees, &s.CoordElections,
		&s.IslandMerges, &s.Reconciliations, &s.DegradedJoins,
		&s.JoinsQueued, &s.QueuedAdmitted, &s.JoinsShed,
		&s.DriftReestimates, &s.DriftedNodes, &s.DriftMessages,
		&s.LocalRepairs, &s.FullRebuildFallbacks,
		&s.Rejoins, &s.SnapshotWrites, &s.Restores,
	}
}

func putRawPoint(e *snapshot.Encoder, p geom.Point2) {
	e.Float64(p.X)
	e.Float64(p.Y)
}

func getRawPoint(d *snapshot.Decoder) geom.Point2 {
	return geom.Point2{X: d.Float64(), Y: d.Float64()}
}

func encodeFaultConfig(e *snapshot.Encoder, c FaultConfig) {
	e.Int(c.Retry.MaxAttempts)
	e.Float64(c.Retry.BaseTimeout)
	e.Float64(c.Retry.Backoff)
	e.Float64(c.Retry.Jitter)
	e.Int(c.SuspectAfter)
	e.Int(c.ConfirmAfter)
	e.Float64(c.DegradedRadius)
}

func decodeFaultConfig(d *snapshot.Decoder) FaultConfig {
	return FaultConfig{
		Retry: RetryPolicy{
			MaxAttempts: d.Int(),
			BaseTimeout: d.Float64(),
			Backoff:     d.Float64(),
			Jitter:      d.Float64(),
		},
		SuspectAfter:   d.Int(),
		ConfirmAfter:   d.Int(),
		DegradedRadius: d.Float64(),
	}
}

// encodeSparseInts writes one per-node int field as a count followed by
// ascending (id, value) pairs of the nonzero entries.
func encodeSparseInts(e *snapshot.Encoder, nodes []node, field func(*node) int) {
	nz := 0
	for i := range nodes {
		if field(&nodes[i]) != 0 {
			nz++
		}
	}
	e.Uvarint(uint64(nz))
	for i := range nodes {
		if v := field(&nodes[i]); v != 0 {
			e.Uvarint(uint64(i))
			e.Int(v)
		}
	}
}

// decodeSparseInts reads a column written by encodeSparseInts, storing each
// value through set; absent entries keep their zero value.
func decodeSparseInts(d *snapshot.Decoder, nnodes int, set func(i int, v int)) {
	nz := d.Length(2)
	for j := 0; j < nz; j++ {
		i := d.Uvarint()
		v := d.Int()
		if d.Err() != nil {
			return
		}
		if i >= uint64(nnodes) {
			d.Fail("sparse counter for node %d of %d", i, nnodes)
			return
		}
		set(int(i), v)
	}
}

// encodeTo appends the session's full payload. putPt may be nil for the
// raw fixed-width position encoding; a GroupSet snapshot passes an
// interning encoder so the shared host population is written once.
func (o *Overlay) encodeTo(e *snapshot.Encoder, putPt core.PointEncoder) {
	if putPt == nil {
		putPt = putRawPoint
	}

	// Session parameters (Config minus the runtime Transport attachment),
	// then the operative fault tuning, which SetTransport may have changed
	// after New.
	c := o.cfg
	putPt(e, c.Source)
	e.Float64(c.Scale)
	e.Int(c.K)
	e.Int(c.MaxOutDegree)
	encodeFaultConfig(e, c.Faults)
	e.Float64(c.Admission.RatePerRound)
	e.Int(c.Admission.Burst)
	e.Int(c.Admission.QueueLimit)
	e.Int(c.Drift.ReestimatePeriod)
	e.Float64(c.Drift.DegradationThreshold)
	e.Float64(c.Drift.FullRebuildCutoff)
	e.Int(int(c.Drift.Policy))
	e.Int(c.Snapshot.Interval)
	e.String(c.Snapshot.Path)
	e.Int(c.Snapshot.KeepLast)
	encodeFaultConfig(e, o.fcfg)
	// Operative admission tuning — SetAdmission may have replaced the one
	// the session was configured with.
	e.Float64(o.adm.RatePerRound)
	e.Int(o.adm.Burst)
	e.Int(o.adm.QueueLimit)

	// Per-node protocol state, one column per field: a restore bulk-decodes
	// each column with a single bounds check instead of paying per-field
	// sticky-error checks on every node, which is most of what keeps a
	// 100k-node restore an order of magnitude under a cold rebuild. The
	// stored polar view is written as-is: joins outside the published disk
	// were clamped into the outer ring, so recomputing it from the position
	// would disagree.
	e.Uvarint(uint64(len(o.nodes)))
	for i := range o.nodes {
		putPt(e, o.nodes[i].pos)
	}
	for i := range o.nodes {
		e.Float64(o.nodes[i].polar.R)
	}
	for i := range o.nodes {
		e.Float64(o.nodes[i].polar.Theta)
	}
	for i := range o.nodes {
		e.Fixed32(o.nodes[i].cell)
	}
	for i := range o.nodes {
		e.Fixed32(o.nodes[i].parent)
	}
	// Children as a length column plus one flattened column — the layout
	// Decoder.Int32Lists reads back.
	for i := range o.nodes {
		e.Fixed32(int32(len(o.nodes[i].children)))
	}
	for i := range o.nodes {
		for _, c := range o.nodes[i].children {
			e.Fixed32(c)
		}
	}
	for i := range o.nodes {
		e.Float64(o.nodes[i].delay)
	}
	for i := range o.nodes {
		e.Bool(o.nodes[i].alive)
	}
	for i := range o.nodes {
		e.Bool(o.nodes[i].isRep)
	}
	// The failure-detector counters are zero on every node a detector
	// round is not currently counting against, so they go out sparse:
	// ascending (id, value) pairs of just the nonzero entries.
	encodeSparseInts(e, o.nodes, func(n *node) int { return n.susp })
	encodeSparseInts(e, o.nodes, func(n *node) int { return n.pmiss })
	for i := range o.nodes {
		e.Bool(o.nodes[i].isCoord)
	}

	// Cell membership in list order (elections pick the lowest-id live
	// member as convener, so order is protocol state, not presentation).
	e.Uvarint(uint64(len(o.members)))
	e.Int32Lists(o.members)
	e.Fixed32s(o.reps)
	e.Int(o.lastSides)

	// Admission-queue contents and the token bucket.
	e.Float64(o.admTokens)
	e.Uvarint(uint64(len(o.pending)))
	for _, p := range o.pending {
		putPt(e, p)
	}

	// The retained build state (grid/bucket arrays, frozen certificate).
	o.bs.EncodeTo(e, putPt)

	// Drift model trajectories and the re-estimation phase.
	e.Bool(o.drift != nil)
	if o.drift != nil {
		o.drift.EncodeTo(e)
	}
	e.Int(o.driftRounds)

	// Session counters — including the round clock MaintenanceRound
	// resumes from.
	for _, f := range statsFields(&o.Stats) {
		e.Int(*f)
	}
}

// decodeOverlay reads a session written by encodeTo and validates every
// index a later operation would follow, so a CRC-valid but logically
// inconsistent payload fails here instead of corrupting a live session.
// The returned overlay has no transport or observers attached.
func decodeOverlay(d *snapshot.Decoder, getPt core.PointDecoder) (*Overlay, error) {
	raw := getPt == nil
	if raw {
		getPt = getRawPoint
	}
	corrupt := func(format string, args ...any) (*Overlay, error) {
		return nil, fmt.Errorf("%w: overlay: "+format, append([]any{snapshot.ErrCorrupt}, args...)...)
	}

	var cfg Config
	cfg.Source = getPt(d)
	cfg.Scale = d.Float64()
	cfg.K = d.Int()
	cfg.MaxOutDegree = d.Int()
	cfg.Faults = decodeFaultConfig(d)
	cfg.Admission = Admission{
		RatePerRound: d.Float64(),
		Burst:        d.Int(),
		QueueLimit:   d.Int(),
	}
	cfg.Drift = DriftConfig{
		ReestimatePeriod:     d.Int(),
		DegradationThreshold: d.Float64(),
		FullRebuildCutoff:    d.Float64(),
		Policy:               RepairPolicy(d.Int()),
	}
	cfg.Snapshot = SnapshotConfig{
		Interval: d.Int(),
		Path:     d.String(),
		KeepLast: d.Int(),
	}
	fcfg := decodeFaultConfig(d)
	adm := Admission{
		RatePerRound: d.Float64(),
		Burst:        d.Int(),
		QueueLimit:   d.Int(),
	}

	// Columns mirror encodeTo exactly. Every bulk read returns nil once the
	// decoder is poisoned, so the assembly loop runs only when all columns
	// arrived at full length.
	nnodes := d.Length(1)
	nodes := make([]node, nnodes)
	if raw {
		xy := d.Float64s(2 * nnodes)
		for i := 0; i < len(xy)/2; i++ {
			nodes[i].pos = geom.Point2{X: xy[2*i], Y: xy[2*i+1]}
		}
	} else {
		for i := range nodes {
			nodes[i].pos = getPt(d)
		}
	}
	polarR := d.Float64s(nnodes)
	polarTheta := d.Float64s(nnodes)
	cells := make([]int32, nnodes)
	d.Fixed32sInto(cells)
	parents := make([]int32, nnodes)
	d.Fixed32sInto(parents)
	children := d.Int32Lists(nnodes)
	delays := d.Float64s(nnodes)
	aliveCol := d.Bools(nnodes)
	isRepCol := d.Bools(nnodes)
	decodeSparseInts(d, nnodes, func(i, v int) { nodes[i].susp = v })
	decodeSparseInts(d, nnodes, func(i, v int) { nodes[i].pmiss = v })
	isCoordCol := d.Bools(nnodes)
	if d.Err() == nil {
		for i := range nodes {
			n := &nodes[i]
			n.polar = geom.Polar{R: polarR[i], Theta: polarTheta[i]}
			n.cell = cells[i]
			n.parent = parents[i]
			n.children = children[i]
			n.delay = delays[i]
			n.alive = aliveCol[i]
			n.isRep = isRepCol[i]
			n.isCoord = isCoordCol[i]
		}
	}
	ncells := d.Length(1)
	members := d.Int32Lists(ncells)
	reps := d.Fixed32s()
	lastSides := d.Int()
	admTokens := d.Float64()
	npending := d.Length(1)
	var pending []geom.Point2
	for i := 0; i < npending; i++ {
		pending = append(pending, getPt(d))
	}
	bs, err := core.DecodeBuildState(d, getPt)
	if err != nil {
		return nil, err
	}
	var dm *coords.DriftModel
	if d.Bool() {
		if dm, err = coords.DecodeDriftModel(d); err != nil {
			return nil, err
		}
	}
	driftRounds := d.Int()
	var stats SessionStats
	for _, f := range statsFields(&stats) {
		*f = d.Int()
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("overlay: %w", err)
	}

	// Config.Validate with the fields a snapshot cannot carry zeroed: fault
	// tuning demands a live transport, which a restored session does not
	// have yet (reattach with SetTransport).
	vc := cfg
	vc.Transport = nil
	vc.Faults = FaultConfig{}
	if err := vc.Validate(); err != nil {
		return corrupt("%v", err)
	}
	if cfg.Faults != (FaultConfig{}) {
		if err := cfg.Faults.validate(); err != nil {
			return corrupt("%v", err)
		}
	}
	if err := fcfg.validate(); err != nil {
		return corrupt("%v", err)
	}
	g, err := grid.NewPolarGrid(cfg.K, cfg.Scale)
	if err != nil {
		return corrupt("%v", err)
	}
	if nnodes < 1 {
		return corrupt("no source node")
	}
	if nodes[0].parent != parentNone || !nodes[0].alive {
		return corrupt("source node not rooted and alive")
	}
	if ncells != g.NumCells() || len(reps) != g.NumCells() {
		return corrupt("%d member lists / %d reps for a depth-%d grid (%d cells)",
			ncells, len(reps), cfg.K, g.NumCells())
	}
	alive := 0
	for i := range nodes {
		n := &nodes[i]
		if n.alive {
			alive++
		}
		if n.cell < 0 || int(n.cell) >= ncells {
			return corrupt("node %d in cell %d of a %d-cell grid", i, n.cell, ncells)
		}
		if n.parent < parentDead || int(n.parent) >= nnodes || n.parent == int32(i) {
			return corrupt("node %d parented by %d", i, n.parent)
		}
		for _, c := range n.children {
			if c < 1 || int(c) >= nnodes {
				return corrupt("node %d lists child %d of %d nodes", i, c, nnodes)
			}
		}
		if n.susp < 0 || n.pmiss < 0 {
			return corrupt("node %d with negative detector counters", i)
		}
	}
	for cell, ms := range members {
		for _, m := range ms {
			if m < 1 || int(m) >= nnodes {
				return corrupt("cell %d lists member %d of %d nodes", cell, m, nnodes)
			}
		}
	}
	for cell, r := range reps {
		if r < -1 || int(r) >= nnodes {
			return corrupt("cell %d represented by %d", cell, r)
		}
	}
	if math.IsNaN(admTokens) || math.IsInf(admTokens, 0) || admTokens < 0 {
		return corrupt("admission tokens %v", admTokens)
	}
	if dm != nil && !cfg.Drift.Enabled() {
		return corrupt("drift model attached without drift tuning")
	}

	o := &Overlay{
		cfg:         cfg,
		g:           g,
		nodes:       nodes,
		members:     members,
		reps:        reps,
		alive:       alive,
		fcfg:        fcfg,
		lastSides:   lastSides,
		bs:          bs,
		drift:       dm,
		driftRounds: driftRounds,
		Stats:       stats,
	}
	// SetAdmission normalizes and validates exactly as it did live, then
	// the recorded bucket and queue overwrite its fresh-start reset.
	// SetDrift is deliberately not used: it would reset the sweep phase
	// and re-Track every member, discarding the recorded trajectories.
	if err := o.SetAdmission(adm); err != nil {
		return corrupt("%v", err)
	}
	o.admTokens = admTokens
	o.pending = pending
	return o, nil
}

// WriteSnapshot serializes the session into w as one sealed envelope.
// Encoding is deterministic: the same state always produces the same
// bytes. The envelope is written in two halves around the
// "snapshot/write" kill point, so a scheduled crash leaves w holding a
// torn prefix that Restore rejects by checksum — exactly the failure the
// recovery suite degrades from. Counted in Stats.SnapshotWrites only
// after the write completes.
func (o *Overlay) WriteSnapshot(w io.Writer) error {
	if err := o.killpoint("snapshot/encode"); err != nil {
		return err
	}
	var e snapshot.Encoder
	o.encodeTo(&e, nil)
	blob := snapshot.Seal(snapshot.KindOverlay, e.Bytes())
	half := len(blob) / 2
	if _, err := w.Write(blob[:half]); err != nil {
		return err
	}
	if err := o.killpoint("snapshot/write"); err != nil {
		return err
	}
	if _, err := w.Write(blob[half:]); err != nil {
		return err
	}
	o.Stats.SnapshotWrites++
	o.emit("protocol/snapshot", -1, -1, "bytes="+strconv.Itoa(len(blob)))
	return nil
}

// SnapshotToFile rotates earlier snapshots (keep-last-N) and writes the
// current state to path atomically: a real crash mid-write leaves the
// previous snapshot intact behind the rename. A *scheduled* kill at
// "snapshot/write" instead models a torn write — half the envelope lands
// on disk without the atomic discipline — so the recovery suite can prove
// the checksum catches it.
func (o *Overlay) SnapshotToFile(path string, keep int) error {
	if err := o.killpoint("snapshot/encode"); err != nil {
		return err
	}
	var e snapshot.Encoder
	o.encodeTo(&e, nil)
	blob := snapshot.Seal(snapshot.KindOverlay, e.Bytes())
	if err := snapshot.Rotate(path, keep); err != nil {
		return err
	}
	if err := o.killpoint("snapshot/write"); err != nil {
		_ = os.WriteFile(path, blob[:len(blob)/2], 0o644)
		return err
	}
	if err := snapshot.WriteFileAtomic(path, blob); err != nil {
		return err
	}
	o.Stats.SnapshotWrites++
	o.emit("protocol/snapshot", -1, -1, "bytes="+strconv.Itoa(len(blob)))
	return nil
}

// maybeAutoSnapshot is MaintenanceRound's final phase: every
// Config.Snapshot.Interval rounds the end-of-round state is checkpointed
// to the configured path.
func (o *Overlay) maybeAutoSnapshot() error {
	sc := o.cfg.Snapshot
	if !sc.Enabled() || o.Stats.MaintenanceRounds%sc.Interval != 0 {
		return nil
	}
	return o.SnapshotToFile(sc.Path, sc.KeepLast)
}

// readAll slurps a snapshot in one allocation when the reader exposes its
// size (bytes.Reader-likes via Len, files via Stat), falling back to
// io.ReadAll's doubling growth otherwise. A multi-megabyte snapshot read
// through ReadAll would be copied several times over.
func readAll(r io.Reader) ([]byte, error) {
	var size int64
	switch rr := r.(type) {
	case interface{ Len() int }:
		size = int64(rr.Len())
	case *os.File:
		if fi, err := rr.Stat(); err == nil && fi.Mode().IsRegular() {
			size = fi.Size()
		}
	}
	if size <= 0 || size > math.MaxInt32 {
		return io.ReadAll(r)
	}
	data := make([]byte, size)
	n, err := io.ReadFull(r, data)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return data[:n], nil // shrank since Stat; Open judges what arrived
	}
	if err != nil {
		return nil, err
	}
	rest, err := io.ReadAll(r) // grew since Stat, or Len under-reported
	if err != nil {
		return nil, err
	}
	return append(data, rest...), nil
}

// Restore reads a snapshot written by WriteSnapshot or SnapshotToFile and
// reconstructs the session: a byte-identical re-encoder of the recorded
// state, resuming MaintenanceRound at the recorded round. Torn or corrupt
// input fails with an error wrapping snapshot.ErrCorrupt — never a panic —
// so a coordinator can degrade to a cold rebuild from member reports.
//
// The restored session has no transport, registry, recorder, or kill plan
// attached; reattach them (SetTransport, Observe, Trace, SetFlight,
// SetKillPlan) before resuming operations that need them. The restore is
// counted in the restored session's Stats.Restores.
func Restore(r io.Reader) (*Overlay, error) {
	data, err := readAll(r)
	if err != nil {
		return nil, err
	}
	return RestoreBytes(data)
}

// RestoreBytes is Restore for a snapshot already in memory — received over
// a network, read from an embedded store, or handed back by an encoder.
// It skips the reader copy; data is only read during the call and is not
// retained by the restored session.
func RestoreBytes(data []byte) (*Overlay, error) {
	kind, payload, err := snapshot.Open(data)
	if err != nil {
		return nil, err
	}
	if kind != snapshot.KindOverlay {
		return nil, fmt.Errorf("%w: payload kind %d is not an overlay", snapshot.ErrCorrupt, kind)
	}
	d := snapshot.NewDecoder(payload)
	o, err := decodeOverlay(d, nil)
	if err != nil {
		return nil, err
	}
	if d.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after the overlay payload", snapshot.ErrCorrupt, d.Len())
	}
	o.Stats.Restores++
	return o, nil
}

// RestoreFile restores a session from a snapshot file; a missing file is
// reported as-is (not corruption), so callers can distinguish "no
// snapshot yet" from a torn one.
func RestoreFile(path string) (*Overlay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Restore(f)
}

// WriteSnapshot serializes the whole set as one envelope: the shared
// tuning, an interned position table — the substrate's host coordinates
// encoded exactly once — and each group's session as per-group deltas of
// table indices. Group order is the sorted name order, so encoding is
// deterministic.
func (s *GroupSet) WriteSnapshot(w io.Writer) error {
	var table []geom.Point2
	index := make(map[geom.Point2]int)
	putPt := func(e *snapshot.Encoder, p geom.Point2) {
		i, ok := index[p]
		if !ok {
			i = len(table)
			index[p] = i
			table = append(table, p)
		}
		e.Uvarint(uint64(i))
	}
	// The group bodies are encoded first (building the table as a side
	// effect), then spliced after the finished table so the decoder reads
	// the table up front.
	var body snapshot.Encoder
	body.Uvarint(uint64(len(s.names)))
	for _, name := range s.names {
		body.String(name)
		s.groups[name].encodeTo(&body, putPt)
	}
	var e snapshot.Encoder
	e.Bool(s.shared != nil)
	pending := false
	if s.shared != nil {
		pending = s.shared.pending
	}
	e.Bool(pending)
	encodeFaultConfig(&e, s.faults)
	e.Uvarint(uint64(len(table)))
	for _, p := range table {
		e.Float64(p.X)
		e.Float64(p.Y)
	}
	e.Raw(body.Bytes())
	_, err := w.Write(snapshot.Seal(snapshot.KindGroupSet, e.Bytes()))
	return err
}

// RestoreGroupSet reads a snapshot written by GroupSet.WriteSnapshot. The
// transport mirrors NewGroupSet: a set snapshotted with a shared transport
// must be restored with one (the snapshot cannot carry the network), and a
// reliable set must stay reliable. The registry may be nil. Each restored
// group counts one Stats.Restores.
func RestoreGroupSet(r io.Reader, t Transport, reg *obs.Registry) (*GroupSet, error) {
	data, err := readAll(r)
	if err != nil {
		return nil, err
	}
	kind, payload, err := snapshot.Open(data)
	if err != nil {
		return nil, err
	}
	if kind != snapshot.KindGroupSet {
		return nil, fmt.Errorf("%w: payload kind %d is not a group set", snapshot.ErrCorrupt, kind)
	}
	d := snapshot.NewDecoder(payload)
	corrupt := func(format string, args ...any) (*GroupSet, error) {
		return nil, fmt.Errorf("%w: group set: "+format, append([]any{snapshot.ErrCorrupt}, args...)...)
	}

	hadShared := d.Bool()
	pending := d.Bool()
	faults := decodeFaultConfig(d)
	ntable := d.Length(16)
	table := make([]geom.Point2, ntable)
	for i := range table {
		table[i] = geom.Point2{X: d.Float64(), Y: d.Float64()}
	}
	getPt := func(d *snapshot.Decoder) geom.Point2 {
		i := d.Uvarint()
		if i >= uint64(len(table)) {
			d.Fail("position index %d outside the %d-entry table", i, len(table))
			return geom.Point2{}
		}
		return table[i]
	}
	ngroups := d.Length(1)
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("group set: %w", err)
	}
	if hadShared && t == nil {
		return nil, fmt.Errorf("protocol: snapshot used a shared transport; RestoreGroupSet needs one")
	}
	if !hadShared && t != nil {
		return nil, fmt.Errorf("protocol: snapshot was reliable; restoring with a transport would change the model")
	}
	if faults != (FaultConfig{}) {
		if err := faults.validate(); err != nil {
			return corrupt("%v", err)
		}
	} else if hadShared {
		return corrupt("shared transport without fault tuning")
	}

	gs := &GroupSet{faults: faults, reg: reg, groups: make(map[string]*Overlay, ngroups)}
	if t != nil {
		gs.shared = &sharedTransport{t: t, pending: pending}
	}
	prev := ""
	for i := 0; i < ngroups; i++ {
		name := d.String()
		if d.Err() != nil {
			return nil, fmt.Errorf("group set: %w", d.Err())
		}
		if name == "" || name <= prev {
			return corrupt("group names not sorted and unique (%q after %q)", name, prev)
		}
		prev = name
		o, err := decodeOverlay(d, getPt)
		if err != nil {
			return nil, err
		}
		if gs.shared != nil {
			if err := o.SetTransport(gs.shared, gs.faults); err != nil {
				return corrupt("%v", err)
			}
		}
		o.reg = reg
		o.flightShared = true // the set owns the round clock (see SetFlight)
		o.Stats.Restores++
		gs.groups[name] = o
		gs.names = append(gs.names, name)
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("group set: %w", err)
	}
	if d.Len() != 0 {
		return corrupt("%d trailing bytes after the last group", d.Len())
	}
	return gs, nil
}

// Restart revives a crashed or ghost-left member in place: the node
// re-enters at its recorded position under its original id, finishing
// whatever cleanup its death left behind (stale wiring, membership
// entries, a held representative role) and re-attaching exactly like a
// join. Orphans that never re-homed ride back in under the restarted
// node. It counts one Rejoin — never a second Join — so a crash+restart
// cycle does not double-count membership churn; its control messages land
// in JoinMessages.
func (o *Overlay) Restart(id int) (OpStats, error) {
	var st OpStats
	if id <= 0 || id >= len(o.nodes) {
		return st, fmt.Errorf("protocol: no such node %d", id)
	}
	n := &o.nodes[id]
	if n.alive {
		return st, fmt.Errorf("protocol: node %d is already alive", id)
	}
	endOp := o.beginOp("protocol/restart", int32(id), "")
	outcome := "ok"
	defer func() { endOp(outcome) }()

	if n.parent != parentDead || n.isRep || len(n.children) > 0 {
		o.repairDead(int32(id), &st)
	}
	o.removeMember(n.cell, int32(id)) // a lost goodbye may still list it
	n.parent = parentDead
	n.susp = 0
	n.pmiss = 0
	n.isCoord = false

	// Re-attach at the stored position: announce to the source, pick the
	// best local parent in the cell, fall back to a descent — the join
	// protocol on an existing id.
	if !o.exchange(int32(id), 0, &st) {
		if parent := o.degradedAttach(int32(id), &st); parent >= 0 {
			o.Stats.DegradedJoins++
			o.finishRestart(int32(id), &st)
			outcome = "degraded"
			return st, nil
		}
		outcome = "refused"
		o.Stats.JoinMessages += st.Messages
		return st, fmt.Errorf("protocol: restart could not reach the source")
	}
	parent := o.bestLocalParent(n.cell, n.pos)
	if parent < 0 {
		parent = o.descendParent(n.pos, o.residual, &st)
	}
	if parent < 0 {
		outcome = "refused"
		o.Stats.JoinMessages += st.Messages
		return st, fmt.Errorf("protocol: overlay out of capacity")
	}
	if o.transport == nil {
		st.Messages += 2 // member query + handshake
	} else if !o.exchange(int32(id), parent, &st) {
		outcome = "refused"
		o.Stats.JoinMessages += st.Messages
		return st, fmt.Errorf("protocol: restart could not reach a parent")
	}
	o.attach(int32(id), parent)
	o.finishRestart(int32(id), &st)
	return st, nil
}

// finishRestart marks the restarted node live again and books the rejoin.
func (o *Overlay) finishRestart(id int32, st *OpStats) {
	n := &o.nodes[id]
	n.alive = true
	o.members[n.cell] = append(o.members[n.cell], id)
	o.alive++
	o.refreshDelays(id) // surviving orphans rode back in under the node
	o.Stats.Rejoins++
	o.Stats.JoinMessages += st.Messages
	o.trackDrift(id, n.pos)
	o.emit("protocol/restarted", id, n.parent, "")
}
