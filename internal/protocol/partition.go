package protocol

import (
	"math"
	"strconv"

	"omtree/internal/grid"
	"omtree/internal/invariant"
	"omtree/internal/tree"
)

// Partition tolerance. A network partition cuts some subtrees off from the
// root side without killing anyone, so the per-node suspicion machine
// (which clears on ANY heard link) never fires for an island whose internal
// links stay healthy. Detection instead rides the per-link pmiss counter:
// a node whose own parent probes have gone unanswered for ConfirmAfter
// consecutive rounds first checks the source directly — if the root side
// answers, the silence was a false alarm (or a single dead link) and the
// node re-homes; if the root side is dark too, the node assumes the cut,
// detaches, and becomes the interim coordinator of a degraded-mode island
// that keeps serving joins locally within a bounded radius. Reachable
// islands merge (the coordinator closer to the source wins the election),
// and once the source answers again a reconciliation pass re-grafts each
// island under its proper polar-grid anchor, sweeps ghosts, and dedups
// membership, converging back to one audited tree. See DESIGN.md §2f.

// RoundTicker is implemented by transports with a virtual round clock
// (faultplane.Plane): MaintenanceRound advances it once per round, which
// is what drives scheduled partition events.
type RoundTicker interface {
	Tick()
}

// PartitionedTransport is implemented by transports that can report the
// current partition state (faultplane.Plane); the session uses it to place
// split/heal transition events on the timeline.
type PartitionedTransport interface {
	Partitioned() int
}

// coordinators returns the live interim coordinators in ascending id order.
func (o *Overlay) coordinators() []int32 {
	var cs []int32
	for id := 1; id < len(o.nodes); id++ {
		if o.nodes[id].alive && o.nodes[id].isCoord {
			cs = append(cs, int32(id))
		}
	}
	return cs
}

// Islands reports the number of degraded-mode islands currently serving
// joins apart from the root side (zero once reconciliation has re-grafted
// everything).
func (o *Overlay) Islands() int { return len(o.coordinators()) }

// degradedRadius is the attach bound for degraded-mode joins and island
// grafts: candidates whose resulting island-relative delay would exceed it
// are refused, so an island cannot grow arbitrarily deep chains that blow
// the radius bound once re-grafted.
func (o *Overlay) degradedRadius() float64 {
	if o.fcfg.DegradedRadius > 0 {
		return o.fcfg.DegradedRadius
	}
	return 2 * o.cfg.Scale
}

// partitionPhase is the degraded-mode step of every maintenance round:
// heal detection and reconciliation for existing islands, cut detection
// and coordinator elections for freshly orphaned subtrees, then island
// merging. Runs in O(n) with no messages when nothing is cut. A non-nil
// error is a scheduled kill firing mid-reconciliation (never a protocol
// failure) — the caller abandons the round as a simulated crash.
func (o *Overlay) partitionPhase(ms *MaintenanceStats, st *OpStats) error {
	// 1. Heal detection: every island that existed at the start of the
	// round probes the source; islands cut this very round skip the probe
	// (their failed source check is what just degraded them).
	for _, c := range o.coordinators() {
		n := &o.nodes[c]
		if !n.alive || !n.isCoord {
			continue // merged away while we iterated
		}
		if o.exchange(c, 0, st) {
			ok, err := o.reconcileIsland(c, st)
			if err != nil {
				return err
			}
			if ok {
				ms.Reconciled++
			}
		}
	}

	// 2. Cut detection: a node whose parent link has been silent for
	// ConfirmAfter consecutive rounds checks whether the root side answers
	// at all before concluding anything.
	for id := 1; id < len(o.nodes); id++ {
		n := &o.nodes[id]
		if !n.alive || n.isCoord || n.pmiss < o.fcfg.ConfirmAfter {
			continue
		}
		if o.exchange(int32(id), 0, st) {
			// The root side answers: the silence is local to this link.
			// Re-home exactly like a false-confirm recovery would.
			if o.rejoinEvicted(int32(id), st) {
				n.pmiss = 0
			}
			continue
		}
		o.degrade(int32(id), ms, st)
	}

	// 3. Island merging: reachable coordinators pair up, the one closer
	// to the source wins the election and absorbs the other's subtree.
	o.mergeIslands(ms, st)

	ms.Islands = o.Islands()
	return nil
}

// degrade cuts subtree root c over to degraded mode: it detaches from its
// unreachable parent (both ends observed the same per-link silence, so the
// detach is symmetric local bookkeeping) and elects itself the island's
// interim coordinator, with delays re-measured relative to the island.
func (o *Overlay) degrade(c int32, ms *MaintenanceStats, st *OpStats) {
	n := &o.nodes[c]
	if p := n.parent; p >= 0 {
		o.detachChild(p, c)
	}
	n.parent = parentNone
	n.pmiss = 0
	n.susp = 0
	n.isCoord = true
	n.delay = 0
	o.refreshDelays(c)
	st.Messages++ // the subtree learns its interim coordinator
	o.Stats.DegradedSubtrees++
	o.Stats.CoordElections++
	ms.Degraded++
	o.emit("protocol/degrade", c, -1, "")
	o.emit("protocol/elect_coordinator", c, -1, "")
}

// islandNodes returns the live members of the island rooted at coordinator
// c (including c), in deterministic DFS order.
func (o *Overlay) islandNodes(c int32) []int32 {
	out := []int32{c}
	for head := 0; head < len(out); head++ {
		for _, ch := range o.nodes[out[head]].children {
			if o.nodes[ch].alive {
				out = append(out, ch)
			}
		}
	}
	return out
}

// islandAttachTarget picks the island member under coordinator c that
// minimizes the joiner's island-relative delay, among members with spare
// degree and within the degraded-radius bound. Returns -1 when the island
// has no admissible slot.
func (o *Overlay) islandAttachTarget(c int32, px, py float64) int32 {
	bound := o.degradedRadius()
	best := int32(-1)
	bestScore := math.Inf(1)
	for _, m := range o.islandNodes(c) {
		n := &o.nodes[m]
		if o.residual(m) == 0 {
			continue
		}
		dx, dy := n.pos.X-px, n.pos.Y-py
		score := n.delay + math.Sqrt(dx*dx+dy*dy)
		if score <= bound && score < bestScore {
			best, bestScore = m, score
		}
	}
	return best
}

// degradedAttach serves a join whose path to the source is dark: it tries
// each live interim coordinator in id order (the partition decides which
// are reachable) and performs a bounded-radius local attach in the first
// island with an admissible slot. Returns the parent id, or -1 when no
// island could serve the join (the caller rolls back as before).
func (o *Overlay) degradedAttach(id int32, st *OpStats) int32 {
	pos := o.nodes[id].pos
	for _, c := range o.coordinators() {
		if !o.exchange(id, c, st) {
			continue // this island is on another side (or unlucky)
		}
		parent := o.islandAttachTarget(c, pos.X, pos.Y)
		if parent < 0 {
			continue // saturated within the degraded radius
		}
		if parent != c && !o.exchange(id, parent, st) {
			continue
		}
		o.attach(id, parent)
		st.Degraded = true
		o.emit("protocol/degraded_join", id, parent, "coord="+strconv.Itoa(int(c)))
		return parent
	}
	return -1
}

// mergeIslands lets reachable islands coalesce while the partition lasts:
// coordinators pair up in id order, the pair elects the one closer to the
// source (tie: lower id), and the loser's subtree grafts into the winner's
// island under the degraded-radius bound. Islands that cannot reach each
// other, or whose graft would blow the bound, stay separate.
func (o *Overlay) mergeIslands(ms *MaintenanceStats, st *OpStats) {
	coords := o.coordinators()
	for i := 0; i < len(coords); i++ {
		a := coords[i]
		for j := i + 1; j < len(coords); j++ {
			if !o.nodes[a].isCoord {
				break // a lost an earlier election this round
			}
			b := coords[j]
			if !o.nodes[b].isCoord {
				continue
			}
			if !o.exchange(a, b, st) {
				continue // different sides (or unlucky); stay split
			}
			winner, loser := a, b
			da := o.nodes[a].pos.Dist(o.cfg.Source)
			db := o.nodes[b].pos.Dist(o.cfg.Source)
			if db < da {
				winner, loser = b, a
			}
			if !o.islandGraft(loser, winner, st) {
				continue
			}
			o.Stats.IslandMerges++
			o.Stats.CoordElections++
			ms.Merged++
			o.emit("protocol/elect_coordinator", winner, loser, "merge")
		}
	}
}

// islandGraft attaches the island rooted at loser under the best admissible
// slot of winner's island, demoting loser from coordinator. Returns false
// (nothing moved) when the winner's island has no slot within the
// degraded-radius bound or the handshake fails.
func (o *Overlay) islandGraft(loser, winner int32, st *OpStats) bool {
	pos := o.nodes[loser].pos
	st.Messages++ // member-list query to the winning coordinator
	parent := o.islandAttachTarget(winner, pos.X, pos.Y)
	if parent < 0 {
		return false
	}
	if parent != winner && !o.exchange(loser, parent, st) {
		return false
	}
	o.attach(loser, parent)
	o.refreshDelays(loser)
	o.nodes[loser].isCoord = false
	return true
}

// reconcileIsland re-grafts the island rooted at coordinator c back under
// the root side after a heal: handshake with the proper polar-grid anchor
// (the representative of the nearest occupied ancestor cell, exactly where
// a fresh cell representative would attach), re-measure delays, then sweep
// the island for ghosts and dedup cell membership. Returns false when the
// anchor handshake failed — the island stays degraded and retries next
// round. A non-nil error is a scheduled kill firing right after the graft:
// the island is re-attached but its delays, ghosts, and duplicate
// membership entries are not yet reconciled.
func (o *Overlay) reconcileIsland(c int32, st *OpStats) (bool, error) {
	o.emit("protocol/reconcile.begin", c, -1, "")
	ring, idx := grid.RingIdx(int(o.nodes[c].cell))
	var anchor int32
	if ring == 0 {
		anchor = 0
	} else {
		anchor = o.ancestorAnchor(ring, idx, o.nodes[c].pos, st)
	}
	// The partition may have marooned an ancestor-cell representative
	// inside this very island; grafting under our own descendant would
	// cycle, so fall back to the source.
	if anchor < 0 || anchor == c || o.isDescendant(anchor, c) {
		anchor = 0
	}
	// The anchor may be saturated (several islands re-graft in the same
	// round): climb toward the source like an adoption would, then descend
	// for a slot. The island is detached from the root tree, so neither
	// walk can re-enter it.
	for anchor > 0 && (!o.nodes[anchor].alive || o.residual(anchor) == 0) {
		st.Messages++
		anchor = o.nodes[anchor].parent
	}
	if anchor < 0 {
		anchor = 0
	}
	if anchor == 0 && o.residual(0) == 0 {
		if alt := o.descendParent(o.nodes[c].pos, o.residual, st); alt >= 0 {
			anchor = alt
		} else {
			o.emit("protocol/reconcile.end", c, anchor, "retry")
			return false, nil
		}
	}
	if !o.exchange(c, anchor, st) {
		o.emit("protocol/reconcile.end", c, anchor, "retry")
		return false, nil
	}
	o.attach(c, anchor)
	// Kill point: the island is grafted but delays are stale, ghosts are
	// still wired, and membership lists may hold duplicates.
	if err := o.killpoint("reconcile"); err != nil {
		return false, err
	}
	o.refreshDelays(c)
	o.nodes[c].isCoord = false
	o.nodes[c].pmiss = 0
	o.emit("protocol/regraft", c, anchor, "")

	// Ghost sweep: members that died while the island was cut off but are
	// still wired into it.
	var ghosts []int32
	stack := []int32{c}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ch := range o.nodes[v].children {
			if !o.nodes[ch].alive {
				ghosts = append(ghosts, ch)
			}
			stack = append(stack, ch)
		}
	}
	for _, g := range ghosts {
		st.Messages++ // the ghost's neighbors report the silence
		o.repairDead(g, st)
	}

	// Duplicate/ghost membership entries are resolved cell-locally by the
	// representatives (bookkeeping, no messages).
	o.dedupMembers()

	o.Stats.Reconciliations++
	o.emit("protocol/reconcile.end", c, anchor, "ok")
	return true, nil
}

// dedupMembers drops duplicate and dead entries from every cell's
// membership list, preserving order.
func (o *Overlay) dedupMembers() {
	seen := make(map[int32]bool)
	for cell := range o.members {
		ms := o.members[cell][:0]
		for _, m := range o.members[cell] {
			if !o.nodes[m].alive || seen[m] {
				continue
			}
			seen[m] = true
			ms = append(ms, m)
		}
		o.members[cell] = ms
	}
}

// AuditDegraded verifies the invariants that must hold even while a
// partition is in effect: the wired parent/child state is symmetric, and
// the live membership forms an acyclic, degree-bounded forest whose roots
// are the source, the interim coordinators, and nodes whose repair is
// still pending (a live node under a confirmed-dead parent). Audit() is
// the strict single-tree form; during a partition it reports the islands
// as disconnection while AuditDegraded must still pass — the fuzz and
// chaos tests assert it after every round.
func (o *Overlay) AuditDegraded() error {
	parents := make([]int32, len(o.nodes))
	children := make([][]int32, len(o.nodes))
	for i := range o.nodes {
		parents[i] = o.nodes[i].parent
		children[i] = o.nodes[i].children
	}
	if err := invariant.CheckSymmetry(parents, children).Err(); err != nil {
		return err
	}
	// Compact the live membership into a forest: any live node whose
	// parent is dead or detached is a root of its component.
	newID := make([]int32, len(o.nodes))
	oldID := make([]int32, 0, o.alive)
	for i := range o.nodes {
		if o.nodes[i].alive {
			newID[i] = int32(len(oldID))
			oldID = append(oldID, int32(i))
		} else {
			newID[i] = -1
		}
	}
	fparents := make([]int32, len(oldID))
	var roots []int32
	for j, old := range oldID {
		p := o.nodes[old].parent
		if old == 0 || p < 0 || !o.nodes[p].alive {
			fparents[j] = tree.NoParent
			roots = append(roots, int32(j))
		} else {
			fparents[j] = newID[p]
		}
	}
	return invariant.CheckForest(fparents, roots, o.cfg.MaxOutDegree).Err()
}
