package protocol

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"omtree/internal/core"
	"omtree/internal/faultplane"
	"omtree/internal/geom"
	"omtree/internal/obs/trace"
	"omtree/internal/rng"
)

// settlePartitionDamage converges the overlay post-heal and then runs the
// eager detector sweep until every ghost is resolved, returning the rounds
// used. Fails the test if the bound is exhausted first.
func settlePartitionDamage(t *testing.T, o *Overlay, bound int) int {
	t.Helper()
	rounds, err := o.Converge(bound)
	if err != nil {
		t.Fatalf("not converged after %d rounds: %v", rounds, err)
	}
	for extra := 0; o.Ghosts() > 0; extra++ {
		if extra >= bound {
			t.Fatalf("%d ghosts still wired after %d detector sweeps", o.Ghosts(), extra)
		}
		if _, err := o.DetectAndRepair(); err != nil {
			t.Fatal(err)
		}
		rounds++
	}
	return rounds
}

// partitionOutcome captures everything two identically-seeded partition
// runs must agree on, trace export included.
type partitionOutcome struct {
	parents   []int32
	alive     []bool
	stats     SessionStats
	plane     faultplane.Stats
	timeline  string
	islands   int // peak islands observed while split
	degraded  int
	radius    float64
	rebuilt   float64
	eq7Bound  float64
	ghostsEnd int
}

// runPartitionChaos drives a seeded session through a scheduled
// split/heal cycle with joins landing mid-partition, then settles and
// audits. The schedule and every draw are seeded, so two calls must agree
// byte for byte.
func runPartitionChaos(t *testing.T, seed uint64, sides int) partitionOutcome {
	t.Helper()
	o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 3, MaxOutDegree: 5})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(1 << 15)
	rec.SetEnabled(true)
	o.Trace(rec)
	r := rng.New(seed ^ 0xbeefcafe)
	for i := 0; i < 40; i++ {
		reliableJoin(t, o, r.UniformDisk(1))
	}
	plane, err := faultplane.New(faultplane.Scenario{Seed: seed, LossRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFaultConfig()
	if err := o.SetTransport(plane, cfg); err != nil {
		t.Fatal(err)
	}
	const healTick = 9
	if err := plane.SetSchedule([]faultplane.PartitionEvent{
		{Sides: sides, Start: 2, Heal: healTick},
	}); err != nil {
		t.Fatal(err)
	}

	var out partitionOutcome
	for round := 1; round <= healTick+1; round++ {
		ms, err := o.MaintenanceRound()
		if err != nil {
			t.Fatal(err)
		}
		if ms.Islands > out.islands {
			out.islands = ms.Islands
		}
		// The degraded-forest invariants must hold after every round, split
		// or not.
		if err := o.AuditDegraded(); err != nil {
			t.Fatalf("round %d: degraded audit failed: %v", round, err)
		}
		// Join pressure lands mid-partition; some of it is served degraded.
		if round >= 4 && round < healTick {
			for i := 0; i < 3; i++ {
				if _, st, err := o.Join(r.UniformDisk(1)); err == nil && st.Degraded {
					out.degraded++
				}
			}
		}
	}
	if out.degraded != o.Stats.DegradedJoins {
		t.Fatalf("observed %d degraded joins, stats say %d", out.degraded, o.Stats.DegradedJoins)
	}

	plane.SetActive(false)
	settlePartitionDamage(t, o, cfg.ConfirmAfter+16)
	out.ghostsEnd = o.Ghosts()

	// Post-heal acceptance: full audit, and the membership's eq. 7 bound
	// holds for the session's periodic rebuild.
	if err := o.Audit(); err != nil {
		t.Fatalf("post-heal audit: %v", err)
	}
	rad, err := o.Radius()
	if err != nil {
		t.Fatal(err)
	}
	out.radius = rad
	_, pts, _, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Build2(geom.Point2{}, pts[1:], core.WithMaxOutDegree(5))
	if err != nil {
		t.Fatal(err)
	}
	out.eq7Bound = res.Bound
	if res.Radius > res.Bound*(1+1e-9) {
		t.Fatalf("eq. 7 violated on the post-heal membership: radius %v > bound %v", res.Radius, res.Bound)
	}
	if _, err := o.Rebuild(); err != nil {
		t.Fatal(err)
	}
	rebuilt, err := o.Radius()
	if err != nil {
		t.Fatal(err)
	}
	out.rebuilt = rebuilt
	if rebuilt > res.Bound*(1+1e-9) {
		t.Fatalf("rebuilt radius %v > eq. 7 bound %v", rebuilt, res.Bound)
	}

	out.parents = make([]int32, len(o.nodes))
	out.alive = make([]bool, len(o.nodes))
	for i := range o.nodes {
		out.parents[i] = o.nodes[i].parent
		out.alive[i] = o.nodes[i].alive
	}
	out.stats = o.Stats
	out.plane = plane.Stats
	out.timeline = rec.Text()
	return out
}

// TestPartitionChaosDeterminism is the acceptance property: same seed +
// same partition schedule => byte-identical post-heal tree, stats, and
// trace export, with a clean audit, the eq. 7 bound honored, and zero
// ghost members.
func TestPartitionChaosDeterminism(t *testing.T) {
	for _, sides := range []int{2, 3} {
		for seed := uint64(1); seed <= 2; seed++ {
			a := runPartitionChaos(t, seed, sides)
			if a.plane.PartitionDrops == 0 {
				t.Fatalf("seed %d sides %d: partition never dropped anything", seed, sides)
			}
			if a.islands == 0 {
				t.Fatalf("seed %d sides %d: no island ever formed", seed, sides)
			}
			if a.ghostsEnd != 0 {
				t.Fatalf("seed %d sides %d: %d ghosts after settling", seed, sides, a.ghostsEnd)
			}
			b := runPartitionChaos(t, seed, sides)
			if a.stats != b.stats || a.plane != b.plane {
				t.Fatalf("seed %d sides %d: stats diverged:\n%+v\n%+v", seed, sides, a.stats, b.stats)
			}
			if !bytes.Equal([]byte(a.timeline), []byte(b.timeline)) {
				t.Fatalf("seed %d sides %d: trace export diverged", seed, sides)
			}
			if len(a.parents) != len(b.parents) {
				t.Fatalf("seed %d sides %d: node counts diverged", seed, sides)
			}
			for i := range a.parents {
				if a.parents[i] != b.parents[i] || a.alive[i] != b.alive[i] {
					t.Fatalf("seed %d sides %d: node %d diverged", seed, sides, i)
				}
			}
			if a.radius != b.radius || a.rebuilt != b.rebuilt {
				t.Fatalf("seed %d sides %d: radii diverged", seed, sides)
			}
		}
	}
}

// TestPartitionDegradedMode pins the split-phase behavior: islands form,
// serve joins flagged Degraded within the radius bound, the strict audit
// reports the disconnection while the degraded audit passes, and Islands()
// agrees with the round stats.
func TestPartitionDegradedMode(t *testing.T) {
	o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 3, MaxOutDegree: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4242)
	for i := 0; i < 40; i++ {
		reliableJoin(t, o, r.UniformDisk(1))
	}
	plane, err := faultplane.New(faultplane.Scenario{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFaultConfig()
	if err := o.SetTransport(plane, cfg); err != nil {
		t.Fatal(err)
	}
	plane.Partition(2)
	aliveBefore := o.N()
	for round := 0; round < cfg.ConfirmAfter+2; round++ {
		if _, err := o.MaintenanceRound(); err != nil {
			t.Fatal(err)
		}
		if err := o.AuditDegraded(); err != nil {
			t.Fatalf("round %d: degraded audit: %v", round, err)
		}
	}
	if o.N() != aliveBefore {
		t.Fatalf("membership changed under a pure partition: %d -> %d", aliveBefore, o.N())
	}
	if o.Islands() == 0 {
		t.Fatal("no islands after the detector window elapsed")
	}
	if err := o.Audit(); err == nil {
		t.Fatal("strict audit passed while the overlay is split")
	}

	// Joins that hash to the cut side are served degraded, within the
	// degraded radius bound relative to their island.
	degraded := 0
	for i := 0; i < 30; i++ {
		id, st, err := o.Join(r.UniformDisk(1))
		if err != nil || !st.Degraded {
			continue
		}
		degraded++
		if d := o.nodes[id].delay; d > o.degradedRadius()+1e-9 {
			t.Fatalf("degraded join %d landed at island delay %v > bound %v", id, d, o.degradedRadius())
		}
	}
	if degraded == 0 {
		t.Fatal("no join was served degraded under a 2-way split")
	}
	if o.Stats.DegradedJoins != degraded {
		t.Fatalf("DegradedJoins = %d, observed %d", o.Stats.DegradedJoins, degraded)
	}

	// Heal: reconciliation re-grafts every island and the strict audit
	// comes back within the detector window.
	plane.Heal()
	plane.SetActive(false)
	settlePartitionDamage(t, o, cfg.ConfirmAfter+16)
	if o.Islands() != 0 {
		t.Fatalf("%d islands survived reconciliation", o.Islands())
	}
	if o.Stats.Reconciliations == 0 {
		t.Fatal("no reconciliation recorded")
	}
	if cr := o.CoverageRatio(); cr != 1 {
		t.Fatalf("coverage %v after reconciliation", cr)
	}
}

// TestAdmissionControl pins the token-bucket semantics: Burst joins pass,
// the next QueueLimit joins queue, further joins shed with a
// deterministic retry-after hint, and maintenance rounds drain the queue
// in arrival order at RatePerRound.
func TestAdmissionControl(t *testing.T) {
	o, err := New(sessionConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	for i := 0; i < 5; i++ {
		reliableJoin(t, o, r.UniformDisk(1))
	}
	adm := Admission{RatePerRound: 2, Burst: 3, QueueLimit: 4}
	if err := o.SetAdmission(adm); err != nil {
		t.Fatal(err)
	}

	joined, queued, shed := 0, 0, 0
	var lastHint int
	for i := 0; i < 10; i++ {
		_, _, err := o.Join(r.UniformDisk(1))
		switch {
		case err == nil:
			joined++
		case errors.Is(err, ErrJoinQueued):
			queued++
		default:
			var ra *RetryAfter
			if !errors.As(err, &ra) {
				t.Fatalf("join %d: unexpected error %v", i, err)
			}
			shed++
			lastHint = ra.Rounds
		}
	}
	if joined != 3 || queued != 4 || shed != 3 {
		t.Fatalf("joined/queued/shed = %d/%d/%d, want 3/4/3", joined, queued, shed)
	}
	if o.PendingJoins() != 4 {
		t.Fatalf("PendingJoins = %d, want 4", o.PendingJoins())
	}
	// Hint: 4 queued + 1 ahead of us at 2 tokens/round => 3 rounds.
	if lastHint != 3 {
		t.Fatalf("retry-after hint = %d, want 3", lastHint)
	}
	if o.Stats.JoinsQueued != 4 || o.Stats.JoinsShed != 3 {
		t.Fatalf("stats JoinsQueued/JoinsShed = %d/%d", o.Stats.JoinsQueued, o.Stats.JoinsShed)
	}

	// Two rounds drain 2 joins each; a third admits none (queue empty, and
	// direct joins get the banked tokens instead).
	n := o.N()
	ms, err := o.MaintenanceRound()
	if err != nil {
		t.Fatal(err)
	}
	if ms.AdmittedJoins != 2 || ms.PendingJoins != 2 {
		t.Fatalf("round 1: admitted %d pending %d, want 2/2", ms.AdmittedJoins, ms.PendingJoins)
	}
	ms, err = o.MaintenanceRound()
	if err != nil {
		t.Fatal(err)
	}
	if ms.AdmittedJoins != 2 || ms.PendingJoins != 0 {
		t.Fatalf("round 2: admitted %d pending %d, want 2/0", ms.AdmittedJoins, ms.PendingJoins)
	}
	if o.N() != n+4 {
		t.Fatalf("drained membership %d, want %d", o.N(), n+4)
	}
	if o.Stats.QueuedAdmitted != 4 {
		t.Fatalf("QueuedAdmitted = %d, want 4", o.Stats.QueuedAdmitted)
	}
	if err := o.Audit(); err != nil {
		t.Fatalf("audit after drain: %v", err)
	}
	// A further round refills tokens with nothing queued; direct joins are
	// admitted again.
	ms, err = o.MaintenanceRound()
	if err != nil {
		t.Fatal(err)
	}
	if ms.AdmittedJoins != 0 || ms.PendingJoins != 0 {
		t.Fatalf("idle round admitted %d pending %d, want 0/0", ms.AdmittedJoins, ms.PendingJoins)
	}
	if _, _, err := o.Join(r.UniformDisk(1)); err != nil {
		t.Fatalf("join after refill: %v", err)
	}
	// Disabling admission stops the throttling entirely.
	if err := o.SetAdmission(Admission{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, _, err := o.Join(r.UniformDisk(1)); err != nil {
			t.Fatalf("unthrottled join failed: %v", err)
		}
	}
}

func TestAdmissionValidation(t *testing.T) {
	o, err := New(sessionConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	bad := []Admission{
		{RatePerRound: -1},
		{RatePerRound: math.NaN()},
		{RatePerRound: math.Inf(1)},
		{RatePerRound: 1, Burst: -2},
		{RatePerRound: 1, QueueLimit: -1},
	}
	for _, a := range bad {
		if err := o.SetAdmission(a); err == nil {
			t.Errorf("accepted invalid admission %+v", a)
		}
	}
	// Defaults: Burst = ceil(rate), QueueLimit = 4*Burst.
	if err := o.SetAdmission(Admission{RatePerRound: 2.5}); err != nil {
		t.Fatal(err)
	}
	if o.adm.Burst != 3 || o.adm.QueueLimit != 12 {
		t.Fatalf("normalized to Burst=%d QueueLimit=%d, want 3/12", o.adm.Burst, o.adm.QueueLimit)
	}
}

// TestConfigValidate is the satellite table test: every malformed field
// must come back as a descriptive error from New.
func TestConfigValidate(t *testing.T) {
	valid := sessionConfig(3)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero scale", func(c *Config) { c.Scale = 0 }},
		{"negative scale", func(c *Config) { c.Scale = -2 }},
		{"NaN scale", func(c *Config) { c.Scale = math.NaN() }},
		{"infinite scale", func(c *Config) { c.Scale = math.Inf(1) }},
		{"zero K", func(c *Config) { c.K = 0 }},
		{"negative K", func(c *Config) { c.K = -3 }},
		{"huge K", func(c *Config) { c.K = 40 }},
		{"degree too small", func(c *Config) { c.MaxOutDegree = 2 }},
		{"NaN source", func(c *Config) { c.Source.X = math.NaN() }},
		{"infinite source", func(c *Config) { c.Source.Y = math.Inf(-1) }},
		{"faults without transport", func(c *Config) { c.Faults = DefaultFaultConfig() }},
		{"bad faults with transport", func(c *Config) {
			c.Transport, _ = faultplane.New(faultplane.Scenario{})
			c.Faults = FaultConfig{Retry: RetryPolicy{MaxAttempts: 0, Backoff: 1}, SuspectAfter: 1, ConfirmAfter: 1}
		}},
		{"bad degraded radius", func(c *Config) {
			c.Transport, _ = faultplane.New(faultplane.Scenario{})
			c.Faults = DefaultFaultConfig()
			c.Faults.DegradedRadius = math.Inf(1)
		}},
		{"bad admission", func(c *Config) { c.Admission = Admission{RatePerRound: -5} }},
		{"drift policy without period", func(c *Config) {
			c.Drift = DriftConfig{Policy: RepairLocal}
		}},
		{"negative drift threshold", func(c *Config) {
			c.Drift = DriftConfig{ReestimatePeriod: 3, DegradationThreshold: -1.1}
		}},
		{"NaN drift threshold", func(c *Config) {
			c.Drift = DriftConfig{ReestimatePeriod: 3, DegradationThreshold: math.NaN()}
		}},
		{"drift cutoff above one", func(c *Config) {
			c.Drift = DriftConfig{ReestimatePeriod: 3, FullRebuildCutoff: 1.5}
		}},
		{"negative drift cutoff", func(c *Config) {
			c.Drift = DriftConfig{ReestimatePeriod: 3, FullRebuildCutoff: -0.1}
		}},
		{"unknown drift policy", func(c *Config) {
			c.Drift = DriftConfig{ReestimatePeriod: 3, Policy: RepairPolicy(9)}
		}},
	}
	for _, tc := range cases {
		cfg := valid
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, cfg)
		}
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	driftCfg := valid
	driftCfg.Drift = DriftConfig{
		ReestimatePeriod: 3, DegradationThreshold: 1.1,
		FullRebuildCutoff: 0.5, Policy: RepairFull,
	}
	if err := driftCfg.Validate(); err != nil {
		t.Fatalf("valid drift config rejected: %v", err)
	}

	// The convenience fields wire the transport and admission through New.
	plane, err := faultplane.New(faultplane.Scenario{Seed: 3, LossRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := valid
	cfg.Transport = plane
	cfg.Faults = DefaultFaultConfig()
	cfg.Admission = Admission{RatePerRound: 100}
	o, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.transport != Transport(plane) || !o.adm.Enabled() {
		t.Fatal("New did not wire Config.Transport / Config.Admission")
	}
	if _, _, err := o.Join(geom.Point2{X: 0.3, Y: 0.1}); err != nil {
		t.Fatalf("join through configured transport: %v", err)
	}
	if o.Stats.Attempts == 0 {
		t.Fatal("configured transport saw no attempts")
	}
}

// crashOnContact crashes a designated victim the first time a designated
// caller contacts it — aimed mid-adoption, so the repair's new anchor dies
// during the in-flight handshake.
type crashOnContact struct {
	from, victim int32
	armed        bool
	fired        bool
}

func (c *crashOnContact) Attempt(from, to int32) faultplane.Outcome {
	if c.armed && !c.fired && from == c.from && to == c.victim {
		c.fired = true
		return faultplane.Outcome{CrashDest: true}
	}
	return faultplane.Outcome{}
}

func (c *crashOnContact) Jitter() float64 { return 0 }

// TestCrashDuringAdoption is the satellite detector edge case: a parent
// dies, and while its orphan is mid-adoption the adoption target crashes
// too. The wired state must stay symmetric after every round (no orphaned
// ghost leaves), and the overlay must still converge with zero ghosts.
func TestCrashDuringAdoption(t *testing.T) {
	o, err := New(sessionConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	for i := 0; i < 25; i++ {
		reliableJoin(t, o, r.UniformDisk(1))
	}
	// Find a grandparent chain: anchor -> parent -> orphan, all live.
	var anchor, parent, orphan int32 = -1, -1, -1
	for id := 1; id < len(o.nodes) && orphan < 0; id++ {
		p := o.nodes[id].parent
		if p <= 0 {
			continue
		}
		if gp := o.nodes[p].parent; gp > 0 {
			anchor, parent, orphan = gp, p, int32(id)
		}
	}
	if orphan < 0 {
		t.Skip("no depth-3 chain in this layout")
	}
	tr := &crashOnContact{from: orphan, victim: anchor}
	cfg := DefaultFaultConfig()
	cfg.SuspectAfter, cfg.ConfirmAfter = 1, 2
	if err := o.SetTransport(tr, cfg); err != nil {
		t.Fatal(err)
	}
	if err := o.FailAbrupt(int(parent)); err != nil {
		t.Fatal(err)
	}
	tr.armed = true

	checkSym := func(round int) {
		t.Helper()
		if err := o.AuditDegraded(); err != nil {
			t.Fatalf("round %d: symmetry/forest broken: %v", round, err)
		}
	}
	checkSym(0)
	for round := 1; round <= 2*cfg.ConfirmAfter+6; round++ {
		if _, err := o.MaintenanceRound(); err != nil {
			t.Fatal(err)
		}
		checkSym(round)
	}
	if !tr.fired {
		t.Fatal("the adoption handshake never hit the victim")
	}
	if o.nodes[anchor].alive {
		t.Fatal("victim survived its scripted crash")
	}
	rounds, err := o.Converge(2*cfg.ConfirmAfter + 8)
	if err != nil {
		t.Fatalf("not converged after %d rounds: %v", rounds, err)
	}
	for o.Ghosts() > 0 {
		if _, err := o.DetectAndRepair(); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.Audit(); err != nil {
		t.Fatalf("final audit: %v", err)
	}
}

// FuzzPartitionSchedule drives arbitrary churn against arbitrary (valid)
// partition schedules: the degraded-forest invariants must hold after
// every round, and once the schedule heals and injection stops the
// overlay must converge to a clean audit with zero ghosts.
func FuzzPartitionSchedule(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(2), uint8(5), []byte{0, 3, 1, 3, 0, 3, 3, 2, 3, 3})
	f.Add(uint64(7), uint8(3), uint8(1), uint8(8), []byte("partition-churn"))
	f.Add(uint64(42), uint8(4), uint8(3), uint8(2), []byte{3, 3, 3, 3, 3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, seed uint64, sides8, start8, dur8 uint8, sched []byte) {
		if len(sched) > 120 {
			sched = sched[:120]
		}
		sides := 2 + int(sides8%3)
		start := 1 + int(start8%5)
		heal := start + 1 + int(dur8%8)
		o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 2, MaxOutDegree: 4})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed)
		for i := 0; i < 12; i++ {
			reliableJoin(t, o, r.UniformDisk(1))
		}
		plane, err := faultplane.New(faultplane.Scenario{
			Seed: seed, LossRate: 0.1, DupRate: 0.05, CrashRate: 0.01,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultFaultConfig()
		if err := o.SetTransport(plane, cfg); err != nil {
			t.Fatal(err)
		}
		if err := plane.SetSchedule([]faultplane.PartitionEvent{
			{Sides: sides, Start: start, Heal: heal},
		}); err != nil {
			t.Fatal(err)
		}
		if err := o.SetAdmission(Admission{RatePerRound: 4}); err != nil {
			t.Fatal(err)
		}
		for _, b := range sched {
			switch b % 4 {
			case 0:
				o.Join(r.UniformDisk(1)) // may queue, shed, degrade, or fail
			case 1:
				if id := randomLiveNode(o, r); id > 0 {
					o.Leave(id)
				}
			case 2:
				if id := randomLiveNode(o, r); id > 0 {
					o.FailAbrupt(id)
				}
			case 3:
				if _, err := o.MaintenanceRound(); err != nil {
					t.Fatal(err)
				}
				if err := o.AuditDegraded(); err != nil {
					t.Fatalf("degraded audit mid-schedule: %v", err)
				}
			}
		}
		// Run the schedule past its heal point, stop injection, settle.
		for plane.Ticks() < heal {
			if _, err := o.MaintenanceRound(); err != nil {
				t.Fatal(err)
			}
		}
		plane.SetActive(false)
		bound := cfg.ConfirmAfter + 16
		rounds, err := o.Converge(bound)
		if err != nil {
			t.Fatalf("not converged after %d rounds: %v", rounds, err)
		}
		for extra := 0; o.Ghosts() > 0; extra++ {
			if extra >= bound {
				t.Fatalf("%d ghosts left after %d sweeps", o.Ghosts(), extra)
			}
			if _, err := o.DetectAndRepair(); err != nil {
				t.Fatal(err)
			}
		}
		if cr := o.CoverageRatio(); cr != 1 {
			t.Fatalf("coverage %v after convergence", cr)
		}
	})
}

// TestGoldenPartitionTimeline locks down the trace timeline of a seeded
// partition -> degrade -> heal -> reconcile run byte for byte. Re-run with
// -update to regenerate after an intended format or protocol change.
func TestGoldenPartitionTimeline(t *testing.T) {
	o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 2, MaxOutDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec := trace.New(4096)
	rec.SetEnabled(true)
	o.Trace(rec)
	r := rng.New(20240805)
	for i := 0; i < 10; i++ {
		reliableJoin(t, o, r.UniformDisk(1))
	}
	plane, err := faultplane.New(faultplane.Scenario{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFaultConfig()
	cfg.SuspectAfter, cfg.ConfirmAfter = 1, 2
	if err := o.SetTransport(plane, cfg); err != nil {
		t.Fatal(err)
	}
	if err := plane.SetSchedule([]faultplane.PartitionEvent{
		{Sides: 2, Start: 1, Heal: 5},
	}); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 6; round++ {
		if _, err := o.MaintenanceRound(); err != nil {
			t.Fatal(err)
		}
	}
	got := rec.Text()

	// The causal chain a partition run must expose, pinned in order.
	pinned := []string{
		"protocol/partition",
		"protocol/degrade",
		"protocol/elect_coordinator",
		"protocol/heal",
		"protocol/reconcile.begin",
		"protocol/regraft",
		"protocol/reconcile.end",
	}
	rest := got
	for _, want := range pinned {
		i := indexOf(rest, want)
		if i < 0 {
			t.Fatalf("timeline missing %q (or out of order)\n%s", want, got)
		}
		rest = rest[i+len(want):]
	}

	path := filepath.Join("testdata", "partition_timeline.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("timeline drifted from %s (re-run with -update if intended)\n got:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// indexOf is strings.Index without dragging the import into every helper.
func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
