package protocol

import (
	"testing"

	"omtree/internal/faultplane"
	"omtree/internal/geom"
	"omtree/internal/rng"
)

// randomLiveNode picks a uniformly random live member (never the source),
// deterministically under the caller's rng stream. Returns -1 when only
// the source remains.
func randomLiveNode(o *Overlay, r *rng.Rand) int {
	var live []int
	for i := 1; i < len(o.nodes); i++ {
		if o.nodes[i].alive {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return -1
	}
	return live[r.Intn(len(live))]
}

// reliableJoin is a test helper for warm-up phases where a join must work.
func reliableJoin(t *testing.T, o *Overlay, p geom.Point2) {
	t.Helper()
	if _, _, err := o.Join(p); err != nil {
		t.Fatal(err)
	}
}

func TestSetTransportValidation(t *testing.T) {
	o, err := New(sessionConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	bad := []FaultConfig{
		{Retry: RetryPolicy{MaxAttempts: 0, Backoff: 2}, SuspectAfter: 1, ConfirmAfter: 1},
		{Retry: RetryPolicy{MaxAttempts: 1, Backoff: 0.5}, SuspectAfter: 1, ConfirmAfter: 1},
		{Retry: RetryPolicy{MaxAttempts: 1, Backoff: 1, BaseTimeout: -1}, SuspectAfter: 1, ConfirmAfter: 1},
		{Retry: RetryPolicy{MaxAttempts: 1, Backoff: 1}, SuspectAfter: 0, ConfirmAfter: 1},
		{Retry: RetryPolicy{MaxAttempts: 1, Backoff: 1}, SuspectAfter: 3, ConfirmAfter: 2},
	}
	for i, cfg := range bad {
		if err := o.SetTransport(nil, cfg); err == nil {
			t.Errorf("case %d: accepted invalid fault config %+v", i, cfg)
		}
	}
	if err := o.SetTransport(nil, DefaultFaultConfig()); err != nil {
		t.Fatalf("rejected default fault config: %v", err)
	}
}

func TestExchangeRetryAccounting(t *testing.T) {
	o, err := New(sessionConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	plane, err := faultplane.New(faultplane.Scenario{Seed: 5, LossRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetTransport(plane, DefaultFaultConfig()); err != nil {
		t.Fatal(err)
	}
	_, st, err := o.Join(geom.Point2{X: 0.5, Y: 0})
	if err == nil {
		t.Fatal("join succeeded with LossRate 1")
	}
	want := DefaultFaultConfig().Retry.MaxAttempts
	if st.Messages != want {
		t.Errorf("messages = %d, want the full retry budget %d", st.Messages, want)
	}
	if st.Retries != want-1 || st.Timeouts != 1 || st.Lost != want {
		t.Errorf("retries/timeouts/lost = %d/%d/%d, want %d/1/%d",
			st.Retries, st.Timeouts, st.Lost, want-1, want)
	}
	if st.SimTime <= 0 {
		t.Error("timeouts consumed no simulated time")
	}
	if len(o.nodes) != 1 || o.N() != 1 {
		t.Errorf("failed join not rolled back: %d nodes", len(o.nodes))
	}
	if o.Stats.Retries != want-1 || o.Stats.Timeouts != 1 || o.Stats.MessagesLost != want {
		t.Errorf("session degradation stats wrong: %+v", o.Stats)
	}
}

func TestLeaveWithLostGoodbyeBecomesGhost(t *testing.T) {
	r := rng.New(21)
	o, err := New(sessionConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		reliableJoin(t, o, r.UniformDisk(1))
	}
	// Pick a member whose goodbye will vanish.
	var victim int32 = -1
	for i := 1; i < len(o.nodes); i++ {
		if o.nodes[i].alive && o.nodes[i].parent >= 0 {
			victim = int32(i)
			break
		}
	}
	parent := o.nodes[victim].parent
	plane, err := faultplane.New(faultplane.Scenario{Seed: 1, LossRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetTransport(plane, DefaultFaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Leave(int(victim)); err != nil {
		t.Fatalf("lossy leave must not error (the member is gone regardless): %v", err)
	}
	if o.nodes[victim].alive {
		t.Fatal("leaver still alive")
	}
	// Nobody heard the goodbye: the state stays wired like a crash.
	wired := false
	for _, c := range o.nodes[parent].children {
		if c == victim {
			wired = true
		}
	}
	if !wired {
		t.Fatal("ghost was unwired despite the lost goodbye")
	}
	// Once the network recovers, the failure detector cleans the ghost
	// within its confirmation window.
	if err := o.SetTransport(nil, DefaultFaultConfig()); err != nil {
		t.Fatal(err)
	}
	rounds, err := o.Converge(o.fcfg.ConfirmAfter + 4)
	if err != nil {
		t.Fatalf("no convergence after %d rounds: %v", rounds, err)
	}
	if o.nodes[victim].parent != parentDead || len(o.nodes[victim].children) != 0 {
		t.Error("ghost not fully cleaned after convergence")
	}
	if o.Stats.MaintenanceRounds == 0 || o.Stats.Heartbeats == 0 {
		t.Errorf("maintenance accounting missing: %+v", o.Stats)
	}
}

// blackhole fails every message touching one victim node — the worst case
// for the failure detector: a live, well-behaved node that the network has
// isolated, which the detector will wrongly confirm dead.
type blackhole struct{ victim int32 }

func (b blackhole) Attempt(from, to int32) faultplane.Outcome {
	if from == b.victim || to == b.victim {
		return faultplane.Outcome{Lost: true}
	}
	return faultplane.Outcome{}
}

func (b blackhole) Jitter() float64 { return 0 }

func TestFalseConfirmDegradesGracefully(t *testing.T) {
	r := rng.New(31)
	o, err := New(sessionConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		reliableJoin(t, o, r.UniformDisk(1))
	}
	// Isolate a mid-tree node with children.
	var victim int32 = -1
	for i := 1; i < len(o.nodes); i++ {
		if o.nodes[i].parent > 0 && len(o.nodes[i].children) > 0 {
			victim = int32(i)
			break
		}
	}
	if victim < 0 {
		t.Skip("no mid-tree node found")
	}
	cfg := DefaultFaultConfig()
	if err := o.SetTransport(blackhole{victim: victim}, cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*cfg.ConfirmAfter+1; i++ {
		if _, err := o.MaintenanceRound(); err != nil {
			t.Fatal(err)
		}
	}
	if o.Stats.FalseSuspects == 0 || o.Stats.FalseConfirms == 0 {
		t.Fatalf("victim never falsely confirmed: %+v", o.Stats)
	}
	if !o.nodes[victim].alive {
		t.Fatal("false confirmation killed a live node")
	}
	// The partition heals: one clean round resets suspicion and the
	// overlay audits clean — no corruption ever happened.
	if err := o.SetTransport(nil, cfg); err != nil {
		t.Fatal(err)
	}
	rounds, err := o.Converge(cfg.ConfirmAfter + 4)
	if err != nil {
		t.Fatalf("no convergence after %d rounds: %v", rounds, err)
	}
	if o.nodes[victim].susp != 0 {
		t.Error("suspicion not cleared after the partition healed")
	}
}

// TestDetectAndRepairSameSweepParentChild is the regression test for the
// old sweep's confusing parent-cleanup branch: a node and its parent dying
// in the same sweep must both end fully cleaned, in either id order (the
// sweep runs in ascending id, so both "parent processed first" and "child
// processed first" must work).
func TestDetectAndRepairSameSweepParentChild(t *testing.T) {
	run := func(t *testing.T, invert bool) {
		r := rng.New(77)
		o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 3, MaxOutDegree: 5})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 60; i++ {
			reliableJoin(t, o, r.UniformDisk(1))
		}
		var child, parent int32 = -1, -1
		if invert {
			// Wire a low id under a high id so the sweep visits the child
			// before its (dead) parent.
			for x := int32(1); x < int32(len(o.nodes)) && child < 0; x++ {
				for y := int32(len(o.nodes)) - 1; y > x; y-- {
					if o.nodes[x].parent != y && o.residual(y) > 0 && !o.isDescendant(y, x) {
						o.moveSubtree(x, y)
						child, parent = x, y
						break
					}
				}
			}
		} else {
			for c := int32(1); c < int32(len(o.nodes)); c++ {
				if p := o.nodes[c].parent; p > 0 {
					child, parent = c, p
					break
				}
			}
		}
		if child < 0 {
			t.Fatal("no suitable parent-child pair found")
		}
		if err := o.FailAbrupt(int(child)); err != nil {
			t.Fatal(err)
		}
		if err := o.FailAbrupt(int(parent)); err != nil {
			t.Fatal(err)
		}
		if _, err := o.DetectAndRepair(); err != nil {
			t.Fatal(err)
		}
		if err := o.Audit(); err != nil {
			t.Fatalf("audit after same-sweep repair: %v", err)
		}
		for _, id := range []int32{child, parent} {
			if o.nodes[id].parent != parentDead || len(o.nodes[id].children) != 0 {
				t.Errorf("node %d not fully cleaned: parent=%d children=%v",
					id, o.nodes[id].parent, o.nodes[id].children)
			}
		}
		st, err := o.DetectAndRepair()
		if err != nil {
			t.Fatal(err)
		}
		if st.Messages != 0 {
			t.Errorf("second sweep cost %d messages", st.Messages)
		}
	}
	t.Run("parent-first", func(t *testing.T) { run(t, false) })
	t.Run("child-first", func(t *testing.T) { run(t, true) })
}

func TestMaintenanceRoundDetectsCrashes(t *testing.T) {
	// The heartbeat detector alone (no eager DetectAndRepair sweep) must
	// find and repair abrupt failures within its confirmation window, even
	// under the reliable default transport.
	r := rng.New(41)
	o, err := New(sessionConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		reliableJoin(t, o, r.UniformDisk(1))
	}
	crashed := 0
	for i := 1; i < len(o.nodes) && crashed < 4; i++ {
		if len(o.nodes[i].children) > 0 {
			if err := o.FailAbrupt(i); err != nil {
				t.Fatal(err)
			}
			crashed++
		}
	}
	if err := o.Audit(); err == nil {
		t.Fatal("audit passed with forwarding ghosts still wired")
	}
	cfg := DefaultFaultConfig()
	rounds, err := o.Converge(cfg.ConfirmAfter + 4)
	if err != nil {
		t.Fatalf("no convergence after %d rounds: %v", rounds, err)
	}
	if rounds < cfg.ConfirmAfter {
		t.Errorf("converged in %d rounds — confirmation should take at least %d",
			rounds, cfg.ConfirmAfter)
	}
	if cr := o.CoverageRatio(); cr != 1 {
		t.Errorf("coverage %v after convergence", cr)
	}
	if o.Stats.FalseConfirms != 0 {
		t.Errorf("reliable network produced %d false confirms", o.Stats.FalseConfirms)
	}
}

// chaosOutcome captures everything two identically-seeded runs must agree
// on: the final wiring, who is alive, every counter, and the injected
// fault schedule.
type chaosOutcome struct {
	parents []int32
	alive   []bool
	rounds  int
	stats   SessionStats
	plane   faultplane.Stats
}

// runChaos drives a seeded churn workload through a fault-injecting
// transport, stops injection, and requires bounded-round convergence to a
// fully audited tree.
func runChaos(t *testing.T, seed uint64, loss float64) chaosOutcome {
	t.Helper()
	o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 3, MaxOutDegree: 5})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed ^ 0x9e3779b97f4a7c15)
	for i := 0; i < 30; i++ { // warm membership under a reliable network
		reliableJoin(t, o, r.UniformDisk(1))
	}
	plane, err := faultplane.New(faultplane.Scenario{
		Seed:      seed,
		LossRate:  loss,
		DupRate:   0.1,
		CrashRate: 0.02,
		DelayMean: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFaultConfig()
	if err := o.SetTransport(plane, cfg); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 150; step++ {
		switch x := r.Float64(); {
		case x < 0.5:
			o.Join(r.UniformDisk(1)) // may fail under faults; that's the point
		case x < 0.7:
			if id := randomLiveNode(o, r); id > 0 {
				o.Leave(id) // goodbye may vanish; leaves a ghost
			}
		case x < 0.8:
			if id := randomLiveNode(o, r); id > 0 {
				if err := o.FailAbrupt(id); err != nil {
					t.Fatal(err)
				}
			}
		default:
			if _, err := o.MaintenanceRound(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Injection stops; the overlay must self-heal in bounded rounds.
	plane.SetActive(false)
	bound := cfg.ConfirmAfter + 12
	rounds, err := o.Converge(bound)
	if err != nil {
		t.Fatalf("seed %d loss %.2f: not converged after %d rounds: %v", seed, loss, rounds, err)
	}
	if cr := o.CoverageRatio(); cr != 1 {
		t.Fatalf("seed %d loss %.2f: coverage %v after convergence", seed, loss, cr)
	}

	out := chaosOutcome{
		parents: make([]int32, len(o.nodes)),
		alive:   make([]bool, len(o.nodes)),
		rounds:  rounds,
		stats:   o.Stats,
		plane:   plane.Stats,
	}
	for i := range o.nodes {
		out.parents[i] = o.nodes[i].parent
		out.alive[i] = o.nodes[i].alive
	}
	return out
}

func TestChaosConvergenceProperty(t *testing.T) {
	for _, loss := range []float64{0.1, 0.2, 0.3} {
		for seed := uint64(1); seed <= 3; seed++ {
			a := runChaos(t, seed, loss)
			if a.stats.MessagesLost == 0 {
				t.Errorf("seed %d loss %.2f: injector never fired", seed, loss)
			}
			// Identical seeds reproduce identical traces and final trees.
			b := runChaos(t, seed, loss)
			if a.rounds != b.rounds || a.stats != b.stats || a.plane != b.plane {
				t.Fatalf("seed %d loss %.2f: replay diverged:\n%+v rounds %d\n%+v rounds %d",
					seed, loss, a.stats, a.rounds, b.stats, b.rounds)
			}
			if len(a.parents) != len(b.parents) {
				t.Fatalf("seed %d loss %.2f: node counts differ", seed, loss)
			}
			for i := range a.parents {
				if a.parents[i] != b.parents[i] || a.alive[i] != b.alive[i] {
					t.Fatalf("seed %d loss %.2f: node %d differs on replay", seed, loss, i)
				}
			}
		}
	}
}

func FuzzFaultSchedule(f *testing.F) {
	f.Add(uint64(1), uint8(30), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint64(7), uint8(12), []byte("join-leave-fail-round"))
	f.Add(uint64(99), uint8(0), []byte{2, 2, 2, 3, 3, 3, 3})
	f.Fuzz(func(t *testing.T, seed uint64, loss8 uint8, sched []byte) {
		if len(sched) > 200 {
			sched = sched[:200]
		}
		loss := float64(loss8%31) / 100 // up to 30% loss
		o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 2, MaxOutDegree: 4})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed)
		for i := 0; i < 10; i++ {
			reliableJoin(t, o, r.UniformDisk(1))
		}
		plane, err := faultplane.New(faultplane.Scenario{
			Seed: seed, LossRate: loss, DupRate: 0.05, CrashRate: 0.02, DelayMean: 0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultFaultConfig()
		if err := o.SetTransport(plane, cfg); err != nil {
			t.Fatal(err)
		}
		for _, b := range sched {
			switch b % 4 {
			case 0:
				o.Join(r.UniformDisk(1))
			case 1:
				if id := randomLiveNode(o, r); id > 0 {
					o.Leave(id)
				}
			case 2:
				if id := randomLiveNode(o, r); id > 0 {
					o.FailAbrupt(id)
				}
			case 3:
				if _, err := o.MaintenanceRound(); err != nil {
					t.Fatal(err)
				}
			}
		}
		plane.SetActive(false)
		if rounds, err := o.Converge(cfg.ConfirmAfter + 12); err != nil {
			t.Fatalf("not converged after %d rounds: %v", rounds, err)
		}
		if cr := o.CoverageRatio(); cr != 1 {
			t.Fatalf("coverage %v after convergence", cr)
		}
	})
}
