package protocol

import (
	"strings"
	"testing"

	"omtree/internal/faultplane"
	"omtree/internal/geom"
	"omtree/internal/obs"
	"omtree/internal/rng"
)

func groupCfg() Config {
	return Config{Scale: 1, K: 3, MaxOutDegree: 6}
}

func TestGroupSetReliableBasics(t *testing.T) {
	reg := obs.New()
	gs, err := NewGroupSet(nil, FaultConfig{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"news", "sports", "music"} {
		if _, err := gs.Create(name, groupCfg()); err != nil {
			t.Fatal(err)
		}
	}
	if gs.Len() != 3 {
		t.Fatalf("Len = %d", gs.Len())
	}
	if got := gs.Names(); len(got) != 3 || got[0] != "music" || got[1] != "news" || got[2] != "sports" {
		t.Fatalf("Names() = %v, want sorted", got)
	}
	// Membership ops per group; hosts may appear in several groups.
	r := rng.New(31)
	ids := map[string][]int{}
	for i := 0; i < 30; i++ {
		p := r.UniformDisk(1)
		for _, name := range gs.Names() {
			if i%2 == 0 || name == "news" {
				id, _, err := gs.Join(name, p)
				if err != nil {
					t.Fatal(err)
				}
				ids[name] = append(ids[name], id)
			}
		}
	}
	if n := gs.Group("news").N(); n != 31 {
		t.Errorf("news has %d members, want 31", n)
	}
	if _, err := gs.Leave("news", ids["news"][3]); err != nil {
		t.Fatal(err)
	}
	if _, err := gs.Rebuild("sports"); err != nil {
		t.Fatal(err)
	}
	for _, name := range gs.Names() {
		o := gs.Group(name)
		if err := o.Audit(); err != nil {
			t.Fatalf("group %s: %v", name, err)
		}
		if _, err := o.Radius(); err != nil {
			t.Fatalf("group %s: %v", name, err)
		}
	}
	// Per-group labeled series landed on the shared registry.
	snap := reg.Snapshot()
	found := map[string]bool{}
	for _, c := range snap.Counters {
		if strings.HasPrefix(c.Name, "groupset/joins{") {
			found[c.Name] = true
		}
	}
	for _, name := range []string{"news", "sports", "music"} {
		if !found[`groupset/joins{group="`+name+`"}`] {
			t.Errorf("missing labeled join counter for %s (have %v)", name, found)
		}
	}
	// Unknown group errors.
	if _, _, err := gs.Join("nope", geom.Point2{}); err == nil {
		t.Error("join on unknown group must fail")
	}
	if _, err := gs.Leave("nope", 1); err == nil {
		t.Error("leave on unknown group must fail")
	}
	if _, err := gs.Rebuild("nope"); err == nil {
		t.Error("rebuild on unknown group must fail")
	}
	if gs.Group("nope") != nil {
		t.Error("unknown group must be nil")
	}
}

func TestGroupSetCreateValidation(t *testing.T) {
	gs, err := NewGroupSet(nil, FaultConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gs.Create("", groupCfg()); err == nil {
		t.Error("empty name must be rejected")
	}
	if _, err := gs.Create("a", groupCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := gs.Create("a", groupCfg()); err == nil {
		t.Error("duplicate name must be rejected")
	}
	cfg := groupCfg()
	plane, err := faultplane.New(faultplane.Scenario{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = plane
	if _, err := gs.Create("b", cfg); err == nil {
		t.Error("per-group transport must be rejected")
	}
	cfg = groupCfg()
	cfg.Faults = DefaultFaultConfig()
	if _, err := gs.Create("c", cfg); err == nil {
		t.Error("per-group fault tuning must be rejected")
	}
	if _, err := gs.Create("d", Config{}); err == nil {
		t.Error("invalid group config must propagate New's error")
	}
	// Set-level validation: faults without transport, bad faults.
	if _, err := NewGroupSet(nil, DefaultFaultConfig(), nil); err == nil {
		t.Error("fault tuning without a transport must be rejected")
	}
	bad := DefaultFaultConfig()
	bad.SuspectAfter = 0
	if _, err := NewGroupSet(plane, bad, nil); err == nil {
		t.Error("invalid fault tuning must be rejected")
	}
}

// TestGroupSetSharedTransport drives several groups over one lossy
// faultplane: every group's control traffic flows through the same plane,
// and MaintenanceAll advances the shared round clock once per sweep, not
// once per group.
func TestGroupSetSharedTransport(t *testing.T) {
	plane, err := faultplane.New(faultplane.Scenario{Seed: 9, LossRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := NewGroupSet(plane, FaultConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c", "d"}
	for _, name := range names {
		if _, err := gs.Create(name, groupCfg()); err != nil {
			t.Fatal(err)
		}
	}
	r := rng.New(77)
	joined := 0
	for i := 0; i < 25; i++ {
		p := r.UniformDisk(1)
		for _, name := range names {
			if _, _, err := gs.Join(name, p); err == nil {
				joined++
			}
		}
	}
	if joined == 0 {
		t.Fatal("no join survived 20% loss; transport wiring is broken")
	}
	var attempts int
	for _, name := range names {
		attempts += gs.Group(name).Stats.Attempts
	}
	if attempts == 0 {
		t.Fatal("no control attempts hit the shared transport")
	}
	before := plane.Ticks()
	for sweep := 0; sweep < 3; sweep++ {
		if _, err := gs.MaintenanceAll(); err != nil {
			t.Fatal(err)
		}
	}
	if got := plane.Ticks() - before; got != 3 {
		t.Errorf("shared round clock advanced %d ticks over 3 sweeps, want 3 (one per sweep, not per group)", got)
	}
	// Converge and audit every group after the lossy churn.
	plane.SetActive(false)
	for sweep := 0; sweep < 8; sweep++ {
		if _, err := gs.MaintenanceAll(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range names {
		if err := gs.Group(name).Audit(); err != nil {
			t.Fatalf("group %s after convergence: %v", name, err)
		}
	}
}
