package protocol

import (
	"math"
	"testing"

	"omtree/internal/core"
	"omtree/internal/geom"
	"omtree/internal/rng"
)

func TestRebuildResetsToCentralizedQuality(t *testing.T) {
	r := rng.New(2000)
	n := 2000
	pts := r.UniformDiskN(n, 1)
	o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: SuggestK(n), MaxOutDegree: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if _, _, err := o.Join(p); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := o.Radius()
	if err != nil {
		t.Fatal(err)
	}

	st, err := o.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages < 2*n {
		t.Errorf("rebuild cost %d messages, want >= %d (report + assign per member)", st.Messages, 2*n)
	}
	rebuilt, err := o.Radius()
	if err != nil {
		t.Fatal(err)
	}
	central, err := core.Build2(geom.Point2{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rebuilt-central.Radius) > 1e-9 {
		t.Errorf("rebuilt radius %v, centralized %v", rebuilt, central.Radius)
	}
	if rebuilt >= raw {
		t.Errorf("rebuild did not improve: %v -> %v", raw, rebuilt)
	}
	tr, _, _, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(6); err != nil {
		t.Fatal(err)
	}
	if o.Stats.Rebuilds != 1 || o.Stats.RebuildMessages != st.Messages {
		t.Errorf("rebuild stats: %+v", o.Stats)
	}
}

func TestJoinAndLeaveAfterRebuild(t *testing.T) {
	r := rng.New(7)
	o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 4, MaxOutDegree: 6})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int, 0, 300)
	for i := 0; i < 300; i++ {
		id, _, err := o.Join(r.UniformDisk(1))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if _, err := o.Rebuild(); err != nil {
		t.Fatal(err)
	}
	// Continue churning against the rebuilt state.
	for i := 0; i < 100; i++ {
		if i%3 == 0 {
			if _, err := o.Leave(ids[i]); err != nil {
				t.Fatalf("leave after rebuild: %v", err)
			}
		} else if _, _, err := o.Join(r.UniformDisk(1)); err != nil {
			t.Fatalf("join after rebuild: %v", err)
		}
	}
	tr, _, _, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(6); err != nil {
		t.Fatal(err)
	}
	if o.MaxOutDegreeUsed() > 6 {
		t.Errorf("degree cap violated: %d", o.MaxOutDegreeUsed())
	}
}

func TestRebuildEmptySession(t *testing.T) {
	o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 2, MaxOutDegree: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Rebuild(); err != nil {
		t.Fatalf("rebuild of source-only session: %v", err)
	}
	if o.N() != 1 {
		t.Errorf("N = %d", o.N())
	}
}

func TestOptimizeConvergesAndHelps(t *testing.T) {
	r := rng.New(11)
	n := 1000
	o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: SuggestK(n), MaxOutDegree: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, _, err := o.Join(r.UniformDisk(1)); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := o.Radius()
	if err != nil {
		t.Fatal(err)
	}
	prev := raw
	for round := 0; round < 8; round++ {
		st, err := o.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		cur, err := o.Radius()
		if err != nil {
			t.Fatal(err)
		}
		if cur > prev+1e-9 {
			t.Fatalf("round %d worsened radius %v -> %v", round, prev, cur)
		}
		prev = cur
		if st.Moves == 0 {
			break
		}
	}
	if prev >= raw-1e-12 && raw > 1.2 {
		t.Errorf("optimize never improved: raw %v final %v", raw, prev)
	}
	tr, _, _, err := o.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(6); err != nil {
		t.Fatal(err)
	}
}
