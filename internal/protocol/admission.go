package protocol

import (
	"errors"
	"fmt"
	"math"
)

// Admission throttles join admissions with a token bucket refilled once
// per maintenance round — the overload valve that keeps a join storm (or a
// degraded-mode island with little spare degree) from queueing unboundedly.
// The zero value disables admission control entirely.
//
// A join that finds no token is parked on a bounded pending queue and
// admitted by an upcoming MaintenanceRound in arrival order; once the
// queue is full, further joins are shed deterministically with a
// *RetryAfter hint telling the caller how many rounds until capacity
// plausibly frees up.
type Admission struct {
	// RatePerRound is the number of tokens refilled per MaintenanceRound;
	// > 0 enables admission control.
	RatePerRound float64
	// Burst is the bucket capacity (defaults to ceil(RatePerRound)).
	Burst int
	// QueueLimit bounds the pending queue (defaults to 4*Burst).
	QueueLimit int
}

// Enabled reports whether this configuration throttles joins.
func (a Admission) Enabled() bool { return a.RatePerRound > 0 }

// validate rejects malformed configurations; the zero value is valid.
func (a Admission) validate() error {
	if a == (Admission{}) {
		return nil
	}
	if math.IsNaN(a.RatePerRound) || math.IsInf(a.RatePerRound, 0) || a.RatePerRound <= 0 {
		return fmt.Errorf("protocol: admission RatePerRound %v must be positive and finite", a.RatePerRound)
	}
	if a.Burst < 0 {
		return fmt.Errorf("protocol: admission Burst %d negative", a.Burst)
	}
	if a.QueueLimit < 0 {
		return fmt.Errorf("protocol: admission QueueLimit %d negative", a.QueueLimit)
	}
	return nil
}

// normalized fills the documented defaults for unset fields.
func (a Admission) normalized() Admission {
	if !a.Enabled() {
		return Admission{}
	}
	if a.Burst == 0 {
		a.Burst = int(math.Ceil(a.RatePerRound))
		if a.Burst < 1 {
			a.Burst = 1
		}
	}
	if a.QueueLimit == 0 {
		a.QueueLimit = 4 * a.Burst
	}
	return a
}

// ErrJoinQueued reports that admission control parked the join on the
// pending queue; an upcoming MaintenanceRound will admit it in arrival
// order (the session owns the queued position — the caller does not retry).
var ErrJoinQueued = errors.New("protocol: join queued by admission control")

// RetryAfter is the deterministic load-shedding rejection: the pending
// queue is full, and the caller should retry after the hinted number of
// maintenance rounds (when the token refills will have drained the queue).
type RetryAfter struct {
	Rounds int
}

func (e *RetryAfter) Error() string {
	return fmt.Sprintf("protocol: join shed by admission control; retry after %d maintenance rounds", e.Rounds)
}

// SetAdmission installs (or, with the zero value, removes) join admission
// control. The bucket starts full and any previously queued joins are
// dropped.
func (o *Overlay) SetAdmission(a Admission) error {
	if err := a.validate(); err != nil {
		return err
	}
	o.adm = a.normalized()
	o.admTokens = float64(o.adm.Burst)
	o.pending = nil
	return nil
}

// PendingJoins reports the number of joins parked on the admission queue.
func (o *Overlay) PendingJoins() int { return len(o.pending) }

// retryAfterRounds computes the shed hint: rounds of refill needed before
// the queue backlog plus one more join fit through the bucket.
func (o *Overlay) retryAfterRounds() int {
	need := float64(len(o.pending)+1) - o.admTokens
	r := int(math.Ceil(need / o.adm.RatePerRound))
	if r < 1 {
		r = 1
	}
	return r
}

// admitPending refills the token bucket and drains the pending queue, one
// token per join, in arrival order. Called once per MaintenanceRound. A
// queued join that fails outright (the overlay is unreachable even in
// degraded mode) is dropped — the joiner observes the timeout and retries
// like any refused join.
func (o *Overlay) admitPending(ms *MaintenanceStats) {
	if !o.adm.Enabled() {
		return
	}
	o.admTokens += o.adm.RatePerRound
	if limit := float64(o.adm.Burst); o.admTokens > limit {
		o.admTokens = limit
	}
	for len(o.pending) > 0 && o.admTokens >= 1 {
		o.admTokens--
		p := o.pending[0]
		o.pending = o.pending[1:]
		if _, _, err := o.join(p); err == nil {
			ms.AdmittedJoins++
			o.Stats.QueuedAdmitted++
		}
	}
	ms.PendingJoins = len(o.pending)
}
