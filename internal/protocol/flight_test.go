package protocol

import (
	"testing"

	"omtree/internal/coords"
	"omtree/internal/obs"
	"omtree/internal/obs/flight"
	"omtree/internal/rng"
)

func TestFlightTickPerMaintenanceRound(t *testing.T) {
	reg := obs.New()
	fr := flight.New(reg, flight.Config{Interval: 2})
	o, err := New(sessionConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	o.Observe(reg)
	o.SetFlight(fr)
	if o.Flight() != fr {
		t.Fatal("Flight accessor lost the recorder")
	}
	r := rng.New(11)
	for i := 0; i < 40; i++ {
		reliableJoin(t, o, r.UniformDisk(1))
	}
	for i := 0; i < 6; i++ {
		if _, err := o.MaintenanceRound(); err != nil {
			t.Fatal(err)
		}
	}
	if fr.Rounds() != 6 {
		t.Fatalf("flight rounds = %d, want 6 (one tick per maintenance round)", fr.Rounds())
	}
	if fr.Len() != 3 {
		t.Fatalf("samples = %d, want 3 (interval 2)", fr.Len())
	}
	last, _ := fr.LastSample()
	if last.Counters["protocol/maintenance_rounds"] != 6 {
		t.Fatalf("sample missed the session counters: %v", last.Counters)
	}
	// A rebuild lands an immediate "build" sample through the build state.
	if _, err := o.Rebuild(); err != nil {
		t.Fatal(err)
	}
	last, _ = fr.LastSample()
	if last.Cause != "build" {
		t.Fatalf("rebuild sample cause = %q, want build", last.Cause)
	}
	if fr.Rounds() != 6 {
		t.Fatal("rebuild advanced the round clock")
	}
}

// A flight recorder must never influence protocol behavior: a sampled and
// an unsampled run of one seeded scenario produce identical stats.
func TestFlightNeutrality(t *testing.T) {
	run := func(attach bool) SessionStats {
		o, err := New(sessionConfig(3))
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			reg := obs.New()
			o.Observe(reg)
			o.SetFlight(flight.New(reg, flight.Config{}))
		}
		r := rng.New(23)
		for i := 0; i < 60; i++ {
			reliableJoin(t, o, r.UniformDisk(1))
		}
		for i := 0; i < 8; i++ {
			if _, err := o.MaintenanceRound(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := o.Rebuild(); err != nil {
			t.Fatal(err)
		}
		return o.Stats
	}
	if run(false) != run(true) {
		t.Fatal("flight sampling changed session stats")
	}
}

func TestGroupSetFlightOncePerSweep(t *testing.T) {
	reg := obs.New()
	fr := flight.New(reg, flight.Config{})
	gs, err := NewGroupSet(nil, FaultConfig{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gs.Create("a", sessionConfig(2)); err != nil {
		t.Fatal(err)
	}
	gs.SetFlight(fr)
	if gs.Flight() != fr {
		t.Fatal("Flight accessor lost the recorder")
	}
	// Groups created after SetFlight inherit the recorder too.
	if _, err := gs.Create("b", sessionConfig(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := gs.Create("c", sessionConfig(2)); err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	for _, g := range gs.Names() {
		for i := 0; i < 20; i++ {
			if _, _, err := gs.Join(g, r.UniformDisk(1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := gs.MaintenanceAll(); err != nil {
			t.Fatal(err)
		}
	}
	if fr.Rounds() != 5 {
		t.Fatalf("flight rounds = %d, want 5 (one tick per sweep, not per group)", fr.Rounds())
	}
	// The sweep-end sample sees every group's labeled series.
	last, ok := fr.LastSample()
	if !ok {
		t.Fatal("no samples after sweeps")
	}
	for _, g := range []string{"a", "b", "c"} {
		if last.Counters[`groupset/joins{group="`+g+`"}`] != 20 {
			t.Fatalf("sample missing group %s joins: %v", g, last.Counters)
		}
	}
	// A group rebuild lands a "build" sample on the set recorder.
	if _, err := gs.Rebuild("b"); err != nil {
		t.Fatal(err)
	}
	last, _ = fr.LastSample()
	if last.Cause != "build" {
		t.Fatalf("group rebuild sample cause = %q, want build", last.Cause)
	}
}

// The acceptance scenario for the certificate SLO: under identical seeded
// drift, the monitor-only policy must fire `certificate_ratio > 1.15 for 2`
// while the local-repair policy — same drift, same rule — must not.
func TestDriftCertificateSLOFiresNoneNotLocal(t *testing.T) {
	run := func(policy RepairPolicy) *flight.Recorder {
		reg := obs.New()
		fr := flight.New(reg, flight.Config{
			Rules: []flight.SLORule{{
				Name: "cert", Series: "protocol/certificate_ratio",
				Op: flight.OpGT, Threshold: 1.15, For: 2,
			}},
		})
		o := driftSession(t, 200, 5,
			DriftConfig{ReestimatePeriod: 1, DegradationThreshold: 1.05, Policy: policy},
			coords.DriftConfig{Seed: 5, VelocityMean: 0.02, InflationPerEpoch: 0.05})
		o.Observe(reg)
		o.SetFlight(fr)
		for round := 0; round < 18; round++ {
			if _, err := o.MaintenanceRound(); err != nil {
				t.Fatal(err)
			}
		}
		return fr
	}
	none := run(RepairNone)
	if none.AlertsFired() == 0 {
		t.Fatalf("monitor-only drift never fired the certificate SLO; firing=%v", none.Firing())
	}
	if got := none.Firing(); len(got) != 1 || got[0] != "cert" {
		t.Fatalf("none policy firing = %v, want [cert]", got)
	}
	local := run(RepairLocal)
	if local.AlertsFired() != 0 {
		t.Fatalf("local repair let the certificate SLO fire: %+v", local.Alerts())
	}
}

func TestFlightSessionGauges(t *testing.T) {
	reg := obs.New()
	fr := flight.New(reg, flight.Config{})
	o, err := New(sessionConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	o.Observe(reg)
	o.SetFlight(fr)
	r := rng.New(3)
	for i := 0; i < 10; i++ {
		reliableJoin(t, o, r.UniformDisk(1))
	}
	if _, err := o.MaintenanceRound(); err != nil {
		t.Fatal(err)
	}
	last, _ := fr.LastSample()
	if _, ok := last.Gauges["protocol/islands"]; !ok {
		t.Fatalf("sample missing end-of-round gauges: %v", last.Gauges)
	}
}
