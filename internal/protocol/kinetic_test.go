package protocol

import (
	"math"
	"testing"

	"omtree/internal/coords"
	"omtree/internal/faultplane"
	"omtree/internal/geom"
	"omtree/internal/obs"
	"omtree/internal/obs/trace"
	"omtree/internal/rng"
)

// driftSession builds a reliable overlay of n members, arms the
// certificate with one rebuild, and attaches a drift model.
func driftSession(t *testing.T, n int, seed uint64, dcfg DriftConfig, mcfg coords.DriftConfig) *Overlay {
	t.Helper()
	o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: SuggestK(n), MaxOutDegree: 6, Drift: dcfg})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	for i := 0; i < n; i++ {
		reliableJoin(t, o, r.UniformDisk(1))
	}
	if _, err := o.Rebuild(); err != nil {
		t.Fatal(err)
	}
	m, err := coords.NewDriftModel(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetDrift(m); err != nil {
		t.Fatal(err)
	}
	return o
}

func TestSetDriftRequiresConfig(t *testing.T) {
	o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 2, MaxOutDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := coords.NewDriftModel(coords.DriftConfig{Seed: 1, VelocityMean: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.SetDrift(m); err == nil {
		t.Fatal("SetDrift without Config.Drift tuning must fail")
	}
	if err := o.SetDrift(nil); err != nil {
		t.Fatalf("detaching a never-attached model: %v", err)
	}
}

// Under jump-dominated drift (route changes relocating a few nodes per
// epoch) the local policy must detect certificate degradation, repair it
// back to the certified radius, and keep the audit clean.
func TestDriftLocalRepairRestoresCertificate(t *testing.T) {
	o := driftSession(t, 300, 17,
		DriftConfig{ReestimatePeriod: 2, DegradationThreshold: 1.05, Policy: RepairLocal},
		coords.DriftConfig{Seed: 17, JumpRate: 0.01, JumpMean: 0.2, InflationPerEpoch: 0.05})
	sawRepair := false
	for round := 0; round < 24; round++ {
		ms, err := o.MaintenanceRound()
		if err != nil {
			t.Fatal(err)
		}
		if ms.RepairedLocal > 0 || ms.RepairedFull > 0 {
			sawRepair = true
			// A repair re-freezes the certificate, so the ratio must sit
			// back at 1 on any round that repaired.
			if ms.CertRatio > 1+1e-9 {
				t.Fatalf("round %d: repair left cert ratio %v above 1", round, ms.CertRatio)
			}
		}
	}
	if !sawRepair {
		t.Fatal("drift never triggered a repair over 24 rounds")
	}
	if o.Stats.DriftReestimates == 0 || o.Stats.DriftedNodes == 0 {
		t.Fatalf("drift accounting empty: %+v", o.Stats)
	}
	if o.Stats.LocalRepairs == 0 {
		t.Fatalf("local policy never used the incremental path: %+v", o.Stats)
	}
	// The acceptance criterion: repairs keep the realized radius within the
	// eq. 7 bound the certificate promised.
	if r, b := o.realizedRadius(), o.bs.Certificate().Bound; r > b*(1+1e-9) {
		t.Fatalf("realized radius %v ended above the eq. 7 bound %v", r, b)
	}
	if err := o.Audit(); err != nil {
		t.Fatalf("audit after kinetic repairs: %v", err)
	}
}

// The monitoring-only policy must track the degradation without ever
// rewiring the tree.
func TestDriftPolicyNoneMonitorsOnly(t *testing.T) {
	o := driftSession(t, 200, 5,
		DriftConfig{ReestimatePeriod: 1, Policy: RepairNone},
		coords.DriftConfig{Seed: 5, VelocityMean: 0.02})
	rebuilds := o.Stats.Rebuilds
	var last MaintenanceStats
	for round := 0; round < 12; round++ {
		ms, err := o.MaintenanceRound()
		if err != nil {
			t.Fatal(err)
		}
		last = ms
	}
	if o.Stats.Rebuilds != rebuilds {
		t.Fatalf("monitor-only policy ran %d rebuilds", o.Stats.Rebuilds-rebuilds)
	}
	if last.CertRatio <= 1 {
		t.Fatalf("12 rounds of unrepaired 0.02-velocity drift should degrade the certified radius, ratio %v", last.CertRatio)
	}
	if o.Stats.LocalRepairs != 0 || o.Stats.FullRebuildFallbacks != 0 {
		t.Fatalf("monitor-only policy recorded repairs: %+v", o.Stats)
	}
	if err := o.Audit(); err != nil {
		t.Fatal(err)
	}
}

// The full policy rebuilds on every sweep; the local policy must match its
// end quality (within the bound) at measurably lower rebuild message cost.
func TestDriftLocalBeatsFullOnMessages(t *testing.T) {
	run := func(policy RepairPolicy) *Overlay {
		o := driftSession(t, 400, 23,
			DriftConfig{ReestimatePeriod: 3, DegradationThreshold: 1.05, Policy: policy},
			coords.DriftConfig{Seed: 23, JumpRate: 0.004, JumpMean: 0.15, InflationPerEpoch: 0.02})
		for round := 0; round < 18; round++ {
			if _, err := o.MaintenanceRound(); err != nil {
				t.Fatal(err)
			}
		}
		return o
	}
	local, full := run(RepairLocal), run(RepairFull)
	if _, ok := local.certRatio(); !ok {
		t.Fatal("local certificate unarmed after the workload")
	}
	if _, ok := full.certRatio(); !ok {
		t.Fatal("full certificate unarmed after the workload")
	}
	if r, b := local.realizedRadius(), local.bs.Certificate().Bound; r > b*(1+1e-9) {
		t.Fatalf("local policy ended above the eq. 7 bound: %v > %v", r, b)
	}
	lm := local.Stats.RebuildMessages + local.Stats.DriftMessages
	fm := full.Stats.RebuildMessages + full.Stats.DriftMessages
	if lm >= fm {
		t.Fatalf("local repair cost %d messages, full-rebuild baseline %d — no win", lm, fm)
	}
	if local.Stats.LocalRepairs == 0 {
		t.Fatal("local policy never repaired locally")
	}
}

// The kinetic loop must stay deterministic byte for byte: two runs of the
// same seeded drift-plus-faults chaos produce identical stats, trees, and
// trace timelines.
func TestDriftChaosDeterminism(t *testing.T) {
	type outcome struct {
		stats   SessionStats
		parents []int32
		events  []trace.Event
	}
	run := func() outcome {
		rec := trace.New(1 << 16)
		rec.SetEnabled(true)
		o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 3, MaxOutDegree: 5,
			Drift: DriftConfig{ReestimatePeriod: 2, DegradationThreshold: 1.02, Policy: RepairLocal}})
		if err != nil {
			t.Fatal(err)
		}
		o.Trace(rec)
		r := rng.New(99)
		for i := 0; i < 120; i++ {
			reliableJoin(t, o, r.UniformDisk(1))
		}
		if _, err := o.Rebuild(); err != nil {
			t.Fatal(err)
		}
		m, err := coords.NewDriftModel(coords.DriftConfig{Seed: 99, VelocityMean: 0.01, JumpRate: 0.05, InflationPerEpoch: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		if err := o.SetDrift(m); err != nil {
			t.Fatal(err)
		}
		plane, err := faultplane.New(faultplane.Scenario{Seed: 99, LossRate: 0.15, DupRate: 0.05, CrashRate: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		if err := o.SetTransport(plane, DefaultFaultConfig()); err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 10; round++ {
			if round%3 == 0 {
				o.Join(r.UniformDisk(1))
			}
			if _, err := o.MaintenanceRound(); err != nil {
				t.Fatal(err)
			}
		}
		plane.SetActive(false)
		if _, err := o.Converge(40); err != nil {
			t.Fatalf("converge after drift chaos: %v", err)
		}
		out := outcome{stats: o.Stats, parents: make([]int32, len(o.nodes)), events: rec.Events()}
		for i := range o.nodes {
			out.parents[i] = o.nodes[i].parent
		}
		return out
	}
	a, b := run(), run()
	if a.stats != b.stats {
		t.Fatalf("stats diverged:\n%+v\n%+v", a.stats, b.stats)
	}
	if len(a.parents) != len(b.parents) {
		t.Fatal("node counts diverged")
	}
	for i := range a.parents {
		if a.parents[i] != b.parents[i] {
			t.Fatalf("node %d parent diverged: %d vs %d", i, a.parents[i], b.parents[i])
		}
	}
	if len(a.events) != len(b.events) {
		t.Fatalf("trace lengths diverged: %d vs %d", len(a.events), len(b.events))
	}
	for i := range a.events {
		if a.events[i] != b.events[i] {
			t.Fatalf("trace event %d diverged:\n%+v\n%+v", i, a.events[i], b.events[i])
		}
	}
	if a.stats.LocalRepairs+a.stats.FullRebuildFallbacks == 0 {
		t.Fatal("chaos workload never exercised a kinetic repair")
	}
}

// The certificate gauge must land in metrics snapshots.
func TestDriftMetricsGauges(t *testing.T) {
	o := driftSession(t, 150, 3,
		DriftConfig{ReestimatePeriod: 1, Policy: RepairLocal},
		coords.DriftConfig{Seed: 3, VelocityMean: 0.02})
	reg := obs.New()
	reg.SetEnabled(true)
	o.Observe(reg)
	for round := 0; round < 6; round++ {
		if _, err := o.MaintenanceRound(); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	ratio, ok := gauges["protocol/certificate_ratio"]
	if !ok || ratio <= 0 || math.IsNaN(ratio) {
		t.Fatalf("certificate_ratio gauge missing or bogus: %v (present %v)", ratio, ok)
	}
	if _, ok := gauges["protocol/drifted_nodes"]; !ok {
		t.Fatal("drifted_nodes gauge missing")
	}
	if counters["protocol/drift_reestimates"] == 0 {
		t.Fatal("drift_reestimates counter missing from snapshot")
	}
}

// FuzzDriftSchedule drives random drift tunings and churn against the
// kinetic loop: it must never panic, and once the network quiets the
// overlay must converge to a clean audit with degrees in bound.
func FuzzDriftSchedule(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(12), uint8(2), uint8(1), uint16(100), uint16(50), uint16(10))
	f.Add(uint64(7), uint8(20), uint8(8), uint8(1), uint8(2), uint16(300), uint16(0), uint16(0))
	f.Add(uint64(42), uint8(60), uint8(16), uint8(4), uint8(0), uint16(20), uint16(200), uint16(25))
	f.Fuzz(func(t *testing.T, seed uint64, n8, rounds8, period8, policy8 uint8, velMil, jumpMil, lossMil uint16) {
		n := 10 + int(n8)%50
		rounds := 1 + int(rounds8)%20
		period := 1 + int(period8)%5
		policy := RepairPolicy(int(policy8) % 3)
		vel := float64(velMil%200) / 10000  // up to 0.02 per epoch
		jump := float64(jumpMil%300) / 1000 // up to 0.3 jump rate
		loss := float64(lossMil%300) / 1000 // up to 30% loss
		o, err := New(Config{Source: geom.Point2{}, Scale: 1, K: 3, MaxOutDegree: 5,
			Drift: DriftConfig{ReestimatePeriod: period, Policy: policy}})
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed)
		for i := 0; i < n; i++ {
			reliableJoin(t, o, r.UniformDisk(1))
		}
		if _, err := o.Rebuild(); err != nil {
			t.Fatal(err)
		}
		m, err := coords.NewDriftModel(coords.DriftConfig{Seed: seed, VelocityMean: vel, JumpRate: jump, InflationPerEpoch: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		if err := o.SetDrift(m); err != nil {
			t.Fatal(err)
		}
		var plane *faultplane.Plane
		if loss > 0 {
			plane, err = faultplane.New(faultplane.Scenario{Seed: seed, LossRate: loss, CrashRate: 0.01})
			if err != nil {
				t.Fatal(err)
			}
			if err := o.SetTransport(plane, DefaultFaultConfig()); err != nil {
				t.Fatal(err)
			}
		}
		for round := 0; round < rounds; round++ {
			switch round % 3 {
			case 0:
				o.Join(r.UniformDisk(1))
			case 1:
				if id := randomLiveNode(o, r); id > 0 {
					o.Leave(id)
				}
			}
			if _, err := o.MaintenanceRound(); err != nil {
				t.Fatal(err)
			}
		}
		if plane != nil {
			plane.SetActive(false)
		}
		if _, err := o.Converge(60); err != nil {
			t.Fatalf("no convergence after drift schedule: %v", err)
		}
		if got := o.MaxOutDegreeUsed(); got > 5 {
			t.Fatalf("degree bound violated: %d > 5", got)
		}
	})
}
