package tree

import (
	"bytes"
	"testing"

	"omtree/internal/rng"
)

func benchTree(b *testing.B, n int) *Tree {
	b.Helper()
	r := rng.New(uint64(n))
	bld, err := NewBuilder(n, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 1; i < n; i++ {
		bld.MustAttach(i, r.Intn(i))
	}
	t, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	t.Prepare()
	return t
}

func BenchmarkBuilderAttach(b *testing.B) {
	const n = 100000
	r := rng.New(1)
	parents := make([]int, n)
	for i := 1; i < n; i++ {
		parents[i] = r.Intn(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld, err := NewBuilder(n, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		for v := 1; v < n; v++ {
			bld.MustAttach(v, parents[v])
		}
		if _, err := bld.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDelays(b *testing.B) {
	t := benchTree(b, 100000)
	dist := func(i, j int) float64 { return 1 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = t.Delays(dist)
	}
}

func BenchmarkValidate(b *testing.B) {
	t := benchTree(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := t.Validate(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryCodec(b *testing.B) {
	t := benchTree(b, 100000)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := t.WriteBinary(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadBinary(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
