package tree

import (
	"math"
	"testing"
	"testing/quick"

	"omtree/internal/rng"
)

// chain builds 0 <- 1 <- 2 <- ... <- n-1.
func chain(t *testing.T, n int) *Tree {
	t.Helper()
	b, err := NewBuilder(n, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if err := b.Attach(i, i-1); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// star builds root 0 with children 1..n-1.
func star(t *testing.T, n int) *Tree {
	t.Helper()
	b, err := NewBuilder(n, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if err := b.Attach(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func unitDist(i, j int) float64 { return 1 }

func TestBuilderBasics(t *testing.T) {
	b, err := NewBuilder(4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.N() != 4 || b.Root() != 1 {
		t.Fatalf("N=%d Root=%d", b.N(), b.Root())
	}
	if !b.Attached(1) || b.Attached(0) {
		t.Error("initial attachment state wrong")
	}
	if err := b.Attach(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(3, 0); err != nil {
		t.Fatal(err)
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Parent(0) != 1 || tr.Parent(2) != 0 || tr.Parent(1) != -1 {
		t.Errorf("parents = %v", tr.Parents())
	}
	if err := tr.Validate(2); err != nil {
		t.Error(err)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(0, 0, 0); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := NewBuilder(3, 5, 0); err == nil {
		t.Error("expected error for root out of range")
	}

	b, err := NewBuilder(4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(1, 1); err == nil {
		t.Error("expected error for self-attach")
	}
	if err := b.Attach(2, 3); err == nil {
		t.Error("expected error for unattached parent")
	}
	if err := b.Attach(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(1, 0); err == nil {
		t.Error("expected error for double attach")
	}
	if err := b.Attach(2, 0); err == nil {
		t.Error("expected error for degree cap violation")
	}
	if err := b.Attach(9, 0); err == nil {
		t.Error("expected error for out-of-range child")
	}
	if _, err := b.Build(); err == nil {
		t.Error("expected error for incomplete build")
	}
}

func TestBuilderResidualDegree(t *testing.T) {
	b, _ := NewBuilder(3, 0, 2)
	if got := b.ResidualDegree(0); got != 2 {
		t.Errorf("ResidualDegree = %d, want 2", got)
	}
	b.MustAttach(1, 0)
	if got := b.ResidualDegree(0); got != 1 {
		t.Errorf("ResidualDegree = %d, want 1", got)
	}
	unconstrained, _ := NewBuilder(3, 0, 0)
	if got := unconstrained.ResidualDegree(0); got < 1<<30 {
		t.Errorf("unconstrained ResidualDegree = %d", got)
	}
}

func TestMustAttachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b, _ := NewBuilder(2, 0, 0)
	b.MustAttach(0, 1) // root cannot be re-attached
}

func TestChildrenAndDegrees(t *testing.T) {
	tr := star(t, 5)
	if got := tr.OutDegree(0); got != 4 {
		t.Errorf("root degree = %d, want 4", got)
	}
	if got := tr.MaxOutDegree(); got != 4 {
		t.Errorf("MaxOutDegree = %d, want 4", got)
	}
	kids := tr.Children(0)
	if len(kids) != 4 {
		t.Fatalf("children = %v", kids)
	}
	if len(tr.Children(1)) != 0 {
		t.Error("leaf has children")
	}
}

func TestBFSOrder(t *testing.T) {
	tr := chain(t, 5)
	order := tr.BFSOrder()
	if len(order) != 5 || order[0] != 0 || order[4] != 4 {
		t.Errorf("BFS order = %v", order)
	}
	depths := tr.Depths()
	for i, d := range depths {
		if d != i {
			t.Errorf("depth[%d] = %d, want %d", i, d, i)
		}
	}
	if tr.Height() != 4 {
		t.Errorf("Height = %d, want 4", tr.Height())
	}
}

func TestDelaysAndRadius(t *testing.T) {
	tr := chain(t, 4)
	delays := tr.Delays(unitDist)
	for i, d := range delays {
		if d != float64(i) {
			t.Errorf("delay[%d] = %v", i, d)
		}
	}
	if r := tr.Radius(unitDist); r != 3 {
		t.Errorf("Radius = %v, want 3", r)
	}

	st := star(t, 6)
	if r := st.Radius(unitDist); r != 1 {
		t.Errorf("star radius = %v, want 1", r)
	}
}

func TestWeightedDiameter(t *testing.T) {
	// Chain of 4 unit edges: diameter 3.
	if d := chain(t, 4).WeightedDiameter(unitDist); d != 3 {
		t.Errorf("chain diameter = %v, want 3", d)
	}
	// Star: diameter 2 (leaf-root-leaf).
	if d := star(t, 5).WeightedDiameter(unitDist); d != 2 {
		t.Errorf("star diameter = %v, want 2", d)
	}
	// Single node: 0.
	single, _ := NewBuilder(1, 0, 0)
	tr, err := single.Build()
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.WeightedDiameter(unitDist); d != 0 {
		t.Errorf("single diameter = %v", d)
	}
	// Weighted: 0 -> 1 (len 5), 0 -> 2 (len 7): diameter 12.
	b, _ := NewBuilder(3, 0, 0)
	b.MustAttach(1, 0)
	b.MustAttach(2, 0)
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dist := func(i, j int) float64 {
		if i > j {
			i, j = j, i
		}
		if i == 0 && j == 1 {
			return 5
		}
		return 7
	}
	if d := w.WeightedDiameter(dist); d != 12 {
		t.Errorf("weighted diameter = %v, want 12", d)
	}
}

func TestPathToRoot(t *testing.T) {
	tr := chain(t, 4)
	path := tr.PathToRoot(3)
	want := []int{3, 2, 1, 0}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestValidateRejectsBadTrees(t *testing.T) {
	cases := []struct {
		name    string
		root    int
		parents []int32
	}{
		{"cycle", 0, []int32{-1, 2, 1}},
		{"self loop", 0, []int32{-1, 1}},
		{"two roots", 0, []int32{-1, -1}},
		{"root has parent", 1, []int32{1, 0}},
		{"parent out of range", 0, []int32{-1, 7}},
		{"disconnected marker", 0, []int32{-1, -2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromParents(tc.root, tc.parents, 0); err == nil {
				t.Errorf("FromParents accepted %v", tc.parents)
			}
		})
	}
}

func TestValidateDegreeCap(t *testing.T) {
	parents := []int32{-1, 0, 0, 0}
	if _, err := FromParents(0, parents, 2); err == nil {
		t.Error("expected degree violation")
	}
	if _, err := FromParents(0, parents, 3); err != nil {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestBuilderSpentAfterBuild(t *testing.T) {
	b, _ := NewBuilder(2, 0, 0)
	b.MustAttach(1, 0)
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	// A spent builder must not corrupt the built tree; attaching should
	// error or panic, not silently mutate.
	defer func() { _ = recover() }()
	if err := b.Attach(1, 0); err == nil {
		t.Error("spent builder accepted attach")
	}
}

func TestRandomTreePropertyQuick(t *testing.T) {
	// Random valid attachment sequences always produce trees that pass
	// Validate and have consistent depth/delay relations.
	f := func(seed uint64, sizeRaw uint8) bool {
		n := int(sizeRaw%40) + 2
		r := rng.New(seed)
		b, err := NewBuilder(n, 0, 0)
		if err != nil {
			return false
		}
		attached := []int{0}
		for i := 1; i < n; i++ {
			p := attached[r.Intn(len(attached))]
			if err := b.Attach(i, p); err != nil {
				return false
			}
			attached = append(attached, i)
		}
		tr, err := b.Build()
		if err != nil {
			return false
		}
		if err := tr.Validate(0); err != nil {
			return false
		}
		// With unit distances, delay == depth for every node.
		delays := tr.Delays(unitDist)
		for i, d := range tr.Depths() {
			if math.Abs(delays[i]-float64(d)) > 1e-12 {
				return false
			}
		}
		// Radius equals max delay and is at most n-1.
		if tr.Radius(unitDist) > float64(n-1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAvgDelay(t *testing.T) {
	tr := chain(t, 4) // delays 0,1,2,3
	if got := tr.AvgDelay(unitDist); got != 2 {
		t.Errorf("AvgDelay = %v, want 2", got)
	}
	single, _ := NewBuilder(1, 0, 0)
	one, err := single.Build()
	if err != nil {
		t.Fatal(err)
	}
	if one.AvgDelay(unitDist) != 0 {
		t.Error("single-node avg delay not 0")
	}
}

func TestDepthHistogram(t *testing.T) {
	tr := star(t, 5)
	h := tr.DepthHistogram()
	if len(h) != 2 || h[0] != 1 || h[1] != 4 {
		t.Errorf("histogram = %v", h)
	}
	ch := chain(t, 3)
	h = ch.DepthHistogram()
	if len(h) != 3 || h[0] != 1 || h[1] != 1 || h[2] != 1 {
		t.Errorf("chain histogram = %v", h)
	}
}

func TestSubtreeSizesAndLoad(t *testing.T) {
	tr := chain(t, 4)
	sizes := tr.SubtreeSizes()
	want := []int{4, 3, 2, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes = %v, want %v", sizes, want)
		}
	}
	load := tr.ForwardingLoad()
	for i, w := range []int{3, 2, 1, 0} {
		if load[i] != w {
			t.Fatalf("load = %v", load)
		}
	}
	st := star(t, 6)
	if st.SubtreeSizes()[0] != 6 {
		t.Error("star root subtree size wrong")
	}
}
