package tree

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// treeJSON is the wire form of a Tree.
type treeJSON struct {
	Root    int     `json:"root"`
	Parents []int32 `json:"parents"`
}

// MarshalJSON implements json.Marshaler.
func (t *Tree) MarshalJSON() ([]byte, error) {
	return json.Marshal(treeJSON{Root: t.Root(), Parents: t.parent})
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded tree.
func (t *Tree) UnmarshalJSON(data []byte) error {
	var w treeJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("tree: decoding JSON: %w", err)
	}
	decoded, err := FromParents(w.Root, w.Parents, 0)
	if err != nil {
		return fmt.Errorf("tree: invalid JSON tree: %w", err)
	}
	*t = *decoded
	return nil
}

// binaryMagic identifies the binary tree framing.
var binaryMagic = [4]byte{'O', 'M', 'T', '1'}

// WriteBinary writes the tree in a compact binary form: magic, uvarint n,
// uvarint root, then zig-zag varint delta-encoded parent entries. Delta
// coding works well here because algorithms attach near-contiguous ranges
// under shared parents.
func (t *Tree) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return fmt.Errorf("tree: writing magic: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(len(t.parent))); err != nil {
		return fmt.Errorf("tree: writing length: %w", err)
	}
	if err := writeUvarint(uint64(t.root)); err != nil {
		return fmt.Errorf("tree: writing root: %w", err)
	}
	prev := int64(0)
	for _, p := range t.parent {
		delta := int64(p) - prev
		n := binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return fmt.Errorf("tree: writing parents: %w", err)
		}
		prev = int64(p)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("tree: flushing: %w", err)
	}
	return nil
}

// ReadBinary decodes a tree written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("tree: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, errors.New("tree: bad magic in binary stream")
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tree: reading length: %w", err)
	}
	const maxNodes = 1 << 31
	if n == 0 || n > maxNodes {
		return nil, fmt.Errorf("tree: implausible node count %d", n)
	}
	root, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tree: reading root: %w", err)
	}
	if root >= n {
		return nil, fmt.Errorf("tree: root %d out of range", root)
	}
	parents := make([]int32, n)
	prev := int64(0)
	for i := range parents {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("tree: reading parent %d: %w", i, err)
		}
		prev += delta
		if prev < int64(NoParent) || prev >= int64(n) {
			return nil, fmt.Errorf("tree: parent %d out of range at node %d", prev, i)
		}
		parents[i] = int32(prev)
	}
	return FromParents(int(root), parents, 0)
}

// WriteDOT renders the tree in Graphviz DOT syntax. label may be nil; when
// given it supplies per-node labels. Intended for small trees (diagrams,
// debugging); the output grows linearly with N.
func (t *Tree) WriteDOT(w io.Writer, label func(i int) string) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "digraph multicast {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "  %d [shape=doublecircle];\n", t.Root()); err != nil {
		return err
	}
	if label != nil {
		for i := 0; i < t.N(); i++ {
			if _, err := fmt.Fprintf(bw, "  %d [label=%q];\n", i, label(i)); err != nil {
				return err
			}
		}
	}
	for i, p := range t.parent {
		if p >= 0 {
			if _, err := fmt.Fprintf(bw, "  %d -> %d;\n", p, i); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
