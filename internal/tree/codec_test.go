package tree

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"omtree/internal/rng"
)

func randomTree(t *testing.T, seed uint64, n int) *Tree {
	t.Helper()
	r := rng.New(seed)
	b, err := NewBuilder(n, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		b.MustAttach(i, r.Intn(i))
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func treesEqual(a, b *Tree) bool {
	if a.Root() != b.Root() || a.N() != b.N() {
		return false
	}
	for i := 0; i < a.N(); i++ {
		if a.Parent(i) != b.Parent(i) {
			return false
		}
	}
	return true
}

func TestJSONRoundTrip(t *testing.T) {
	orig := randomTree(t, 1, 50)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Tree
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if !treesEqual(orig, &decoded) {
		t.Error("JSON round trip changed the tree")
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	var tr Tree
	inputs := []string{
		`{"root": 0, "parents": [-1, 5]}`, // parent out of range
		`{"root": 0, "parents": [-1, 2, 1]}`,
		`{"root": 3, "parents": [-1]}`,
		`not json`,
	}
	for _, in := range inputs {
		if err := json.Unmarshal([]byte(in), &tr); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 17, 1000} {
		orig := randomTree(t, uint64(n), n)
		var buf bytes.Buffer
		if err := orig.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		decoded, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !treesEqual(orig, decoded) {
			t.Errorf("n=%d: binary round trip changed the tree", n)
		}
	}
}

func TestBinaryCompactness(t *testing.T) {
	// Delta coding should keep the encoding well under 4 bytes/node for
	// builder-ordered trees.
	orig := randomTree(t, 7, 10000)
	var buf bytes.Buffer
	if err := orig.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 4*10000 {
		t.Errorf("encoding is %d bytes for 10000 nodes", buf.Len())
	}
}

func TestBinaryRejectsCorrupt(t *testing.T) {
	orig := randomTree(t, 3, 10)
	var buf bytes.Buffer
	if err := orig.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	if _, err := ReadBinary(bytes.NewReader(data[:3])); err == nil {
		t.Error("accepted truncated magic")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("accepted bad magic")
	}
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-2])); err == nil {
		t.Error("accepted truncated stream")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("accepted empty stream")
	}
}

func TestWriteDOT(t *testing.T) {
	tr := randomTree(t, 5, 5)
	var b strings.Builder
	if err := tr.WriteDOT(&b, func(i int) string { return "node" }); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "doublecircle", "->", "node"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	var noLabels strings.Builder
	if err := tr.WriteDOT(&noLabels, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(noLabels.String(), "label") {
		t.Error("labels present without label func")
	}
}
