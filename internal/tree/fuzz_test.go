package tree

import (
	"bytes"
	"encoding/json"
	"testing"
)

// corpusTrees builds a few small representative trees (chain, star, binary
// heap shape, singleton) whose binary encodings seed the fuzz corpus.
func corpusTrees(tb testing.TB) []*Tree {
	tb.Helper()
	shapes := [][]int32{
		{NoParent},
		{NoParent, 0, 1, 2, 3},          // chain
		{NoParent, 0, 0, 0, 0, 0},       // star
		{NoParent, 0, 0, 1, 1, 2, 2},    // balanced binary
		{2, 2, NoParent, 0, 1, 4, 3, 0}, // root in the middle
	}
	trees := make([]*Tree, 0, len(shapes))
	for _, parents := range shapes {
		root := 0
		for i, p := range parents {
			if p == NoParent {
				root = i
			}
		}
		tr, err := FromParents(root, parents, 0)
		if err != nil {
			tb.Fatal(err)
		}
		trees = append(trees, tr)
	}
	return trees
}

// FuzzCodecRoundTrip throws arbitrary bytes at the binary decoder: anything
// it accepts must re-encode to the identical byte string, survive a JSON
// round-trip, and still validate as a tree; anything else must be rejected
// with an error, never a panic.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, tr := range corpusTrees(f) {
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected without panicking: fine
		}
		var out bytes.Buffer
		if err := tr.WriteBinary(&out); err != nil {
			t.Fatalf("re-encoding accepted tree: %v", err)
		}
		// The encoding is canonical, so decode(encode(decode(x))) must equal
		// encode's output byte-for-byte. (out may be shorter than data when
		// the input carried trailing garbage the decoder never read.)
		back, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("decoder rejected its own output: %v", err)
		}
		var again bytes.Buffer
		if err := back.WriteBinary(&again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), again.Bytes()) {
			t.Fatal("binary encoding not canonical under round-trip")
		}
		if err := tr.Validate(0); err != nil {
			t.Fatalf("decoder accepted an invalid tree: %v", err)
		}

		// JSON round-trip preserves the tree exactly.
		js, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		var viaJSON Tree
		if err := json.Unmarshal(js, &viaJSON); err != nil {
			t.Fatalf("JSON round-trip rejected: %v", err)
		}
		if viaJSON.Root() != tr.Root() || viaJSON.N() != tr.N() {
			t.Fatal("JSON round-trip changed root or size")
		}
		for i := 0; i < tr.N(); i++ {
			if viaJSON.Parent(i) != tr.Parent(i) {
				t.Fatalf("JSON round-trip changed parent of node %d", i)
			}
		}
	})
}
