// Package tree provides the rooted, degree-constrained multicast tree
// representation shared by every algorithm in this library: a compact
// parent-array tree with lazily built child adjacency, a Builder that
// enforces out-degree caps and top-down construction (which makes cycles
// unrepresentable), tree metrics (radius, depth, weighted diameter), and
// JSON / binary / DOT codecs.
//
// Node identifiers are dense integers in [0, N); geometry is intentionally
// kept out of this package — metrics accept an edge-length callback so that
// the same tree type serves 2-D, 3-D and d-dimensional builds as well as
// delay-matrix-driven trees.
package tree

import (
	"errors"
	"fmt"
)

// NoParent marks the root's entry in the parent array.
const NoParent int32 = -1

// unattached marks nodes not yet wired into the Builder's tree.
const unattached int32 = -2

// Tree is an immutable rooted spanning tree over nodes [0, N). Construct one
// with a Builder or a decoder; the zero value is an empty tree.
type Tree struct {
	root   int32
	parent []int32

	// Lazily built CSR child adjacency and BFS order (see adjacency).
	childStart []int32
	childList  []int32
	bfsOrder   []int32
}

// N returns the number of nodes.
func (t *Tree) N() int { return len(t.parent) }

// Root returns the root node id.
func (t *Tree) Root() int { return int(t.root) }

// Parent returns the parent of node i, or -1 for the root.
func (t *Tree) Parent(i int) int { return int(t.parent[i]) }

// Parents returns a copy of the parent array.
func (t *Tree) Parents() []int32 {
	return append([]int32(nil), t.parent...)
}

// adjacency builds (once) the CSR representation of children plus a BFS
// order from the root. Trees are built by one goroutine and then read, so no
// locking is needed; Metrics callers that share a tree across goroutines
// should call Prepare first.
func (t *Tree) adjacency() {
	if t.childStart != nil {
		return
	}
	n := len(t.parent)
	counts := make([]int32, n+1)
	for _, p := range t.parent {
		if p >= 0 {
			counts[p+1]++
		}
	}
	start := make([]int32, n+1)
	for i := 0; i < n; i++ {
		start[i+1] = start[i] + counts[i+1]
	}
	list := make([]int32, n-1)
	fill := append([]int32(nil), start[:n]...)
	for i, p := range t.parent {
		if p >= 0 {
			list[fill[p]] = int32(i)
			fill[p]++
		}
	}

	order := make([]int32, 0, n)
	order = append(order, t.root)
	for head := 0; head < len(order); head++ {
		v := order[head]
		order = append(order, list[start[v]:start[v+1]]...)
	}

	t.childStart = start
	t.childList = list
	t.bfsOrder = order
}

// Prepare forces construction of the internal adjacency so that subsequent
// metric calls are safe to run concurrently.
func (t *Tree) Prepare() { t.adjacency() }

// Children returns the children of node i. The returned slice aliases
// internal storage and must not be modified.
func (t *Tree) Children(i int) []int32 {
	t.adjacency()
	return t.childList[t.childStart[i]:t.childStart[i+1]]
}

// OutDegree returns the number of children of node i.
func (t *Tree) OutDegree(i int) int {
	t.adjacency()
	return int(t.childStart[i+1] - t.childStart[i])
}

// MaxOutDegree returns the largest out-degree in the tree (0 for a
// single-node tree).
func (t *Tree) MaxOutDegree() int {
	t.adjacency()
	maxDeg := 0
	for i := 0; i < t.N(); i++ {
		if d := int(t.childStart[i+1] - t.childStart[i]); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// BFSOrder returns the nodes in breadth-first order from the root. The
// returned slice aliases internal storage and must not be modified.
func (t *Tree) BFSOrder() []int32 {
	t.adjacency()
	return t.bfsOrder
}

// PathToRoot returns the node ids from i up to and including the root.
func (t *Tree) PathToRoot(i int) []int {
	path := []int{i}
	for t.parent[i] >= 0 {
		i = int(t.parent[i])
		path = append(path, i)
	}
	return path
}

// Validate checks structural invariants from scratch — useful after
// decoding: exactly one root matching Root(), all parents in range, and
// every node reaching the root (which rules out cycles). maxOutDegree > 0
// additionally enforces the degree cap.
func (t *Tree) Validate(maxOutDegree int) error {
	n := len(t.parent)
	if n == 0 {
		return errors.New("tree: empty tree")
	}
	if t.root < 0 || int(t.root) >= n {
		return fmt.Errorf("tree: root %d out of range [0, %d)", t.root, n)
	}
	rootSeen := false
	for i, p := range t.parent {
		switch {
		case p == NoParent:
			if int32(i) != t.root {
				return fmt.Errorf("tree: node %d has no parent but is not the root", i)
			}
			rootSeen = true
		case p < 0 || int(p) >= n:
			return fmt.Errorf("tree: node %d has parent %d out of range", i, p)
		case int32(i) == t.root:
			return fmt.Errorf("tree: root %d has parent %d", i, p)
		}
	}
	if !rootSeen {
		return errors.New("tree: no root entry in parent array")
	}
	// Reachability: walk up from every node with path compression into a
	// visited state machine. state: 0 unknown, 1 reaches root, 2 on current
	// path (cycle detection).
	state := make([]int8, n)
	state[t.root] = 1
	var stack []int32
	for i := 0; i < n; i++ {
		v := int32(i)
		stack = stack[:0]
		for state[v] == 0 {
			state[v] = 2
			stack = append(stack, v)
			v = t.parent[v]
		}
		if state[v] == 2 {
			return fmt.Errorf("tree: cycle through node %d", v)
		}
		for _, u := range stack {
			state[u] = 1
		}
	}
	if maxOutDegree > 0 {
		counts := make([]int32, n)
		for _, p := range t.parent {
			if p >= 0 {
				counts[p]++
			}
		}
		for i, c := range counts {
			if int(c) > maxOutDegree {
				return fmt.Errorf("tree: node %d has out-degree %d > %d", i, c, maxOutDegree)
			}
		}
	}
	return nil
}

// DistFunc returns the communication delay (edge length) between two nodes.
type DistFunc func(i, j int) float64

// Delays returns, for every node, the total path length from the root
// (the sender-to-receiver delay of overlay multicast).
func (t *Tree) Delays(dist DistFunc) []float64 {
	t.adjacency()
	delays := make([]float64, t.N())
	for _, v := range t.bfsOrder {
		if p := t.parent[v]; p >= 0 {
			delays[v] = delays[p] + dist(int(p), int(v))
		}
	}
	return delays
}

// Radius returns the maximum sender-to-receiver delay — the objective
// minimized by the paper.
func (t *Tree) Radius(dist DistFunc) float64 {
	var r float64
	for _, d := range t.Delays(dist) {
		if d > r {
			r = d
		}
	}
	return r
}

// Depths returns the hop count from the root for every node.
func (t *Tree) Depths() []int {
	t.adjacency()
	depths := make([]int, t.N())
	for _, v := range t.bfsOrder {
		if p := t.parent[v]; p >= 0 {
			depths[v] = depths[p] + 1
		}
	}
	return depths
}

// Height returns the maximum hop count from the root.
func (t *Tree) Height() int {
	var h int
	for _, d := range t.Depths() {
		if d > h {
			h = d
		}
	}
	return h
}

// WeightedDiameter returns the longest path length between any two nodes of
// the tree (the objective of the minimum-diameter MDDL variant), computed by
// the standard two-pass dynamic program over down-heights.
func (t *Tree) WeightedDiameter(dist DistFunc) float64 {
	t.adjacency()
	n := t.N()
	down := make([]float64, n) // longest downward path starting at v
	order := t.bfsOrder
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		for _, c := range t.Children(int(v)) {
			if h := down[c] + dist(int(v), int(c)); h > down[v] {
				down[v] = h
			}
		}
	}
	var best float64
	for v := 0; v < n; v++ {
		// Combine the two largest child heights through v.
		var first, second float64
		for _, c := range t.Children(v) {
			h := down[c] + dist(v, int(c))
			if h > first {
				first, second = h, first
			} else if h > second {
				second = h
			}
		}
		if first+second > best {
			best = first + second
		}
	}
	return best
}

// Builder constructs a Tree incrementally while enforcing degree caps and
// top-down attachment (a child's parent must already be attached), which
// makes cycles impossible by construction.
type Builder struct {
	parent   []int32
	outDeg   []int32
	maxDeg   int32
	root     int32
	attached int
}

// NewBuilder creates a builder for n nodes rooted at root. maxOutDegree <= 0
// means unconstrained.
func NewBuilder(n, root, maxOutDegree int) (*Builder, error) {
	if n <= 0 {
		return nil, errors.New("tree: builder needs n > 0")
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("tree: root %d out of range [0, %d)", root, n)
	}
	b := &Builder{
		parent: make([]int32, n),
		outDeg: make([]int32, n),
		maxDeg: int32(maxOutDegree),
		root:   int32(root),
	}
	for i := range b.parent {
		b.parent[i] = unattached
	}
	b.parent[root] = NoParent
	b.attached = 1
	return b, nil
}

// N returns the number of nodes.
func (b *Builder) N() int { return len(b.parent) }

// Root returns the root id.
func (b *Builder) Root() int { return int(b.root) }

// Attached reports whether node i has been wired into the tree.
func (b *Builder) Attached(i int) bool { return b.parent[i] != unattached }

// OutDegree returns the current out-degree of node i.
func (b *Builder) OutDegree(i int) int { return int(b.outDeg[i]) }

// ResidualDegree returns how many more children node i may take
// (a large sentinel if unconstrained).
func (b *Builder) ResidualDegree(i int) int {
	if b.maxDeg <= 0 {
		return int(^uint32(0) >> 1)
	}
	return int(b.maxDeg - b.outDeg[i])
}

// Attach wires child under parent. The parent must already be attached, the
// child must not be, and the parent must have residual degree.
func (b *Builder) Attach(child, parent int) error {
	if child == parent {
		return fmt.Errorf("tree: cannot attach node %d to itself", child)
	}
	if child < 0 || child >= len(b.parent) || parent < 0 || parent >= len(b.parent) {
		return fmt.Errorf("tree: attach (%d <- %d) out of range", parent, child)
	}
	if b.parent[child] != unattached {
		return fmt.Errorf("tree: node %d is already attached", child)
	}
	if b.parent[parent] == unattached {
		return fmt.Errorf("tree: parent %d is not attached yet", parent)
	}
	if b.maxDeg > 0 && b.outDeg[parent] >= b.maxDeg {
		return fmt.Errorf("tree: parent %d is at its out-degree cap %d", parent, b.maxDeg)
	}
	b.parent[child] = int32(parent)
	b.outDeg[parent]++
	b.attached++
	return nil
}

// MustAttach is Attach that panics on error; algorithms use it where the
// construction logic guarantees validity and an error indicates a bug.
func (b *Builder) MustAttach(child, parent int) {
	if err := b.Attach(child, parent); err != nil {
		panic(err)
	}
}

// Remaining returns how many nodes are not yet attached.
func (b *Builder) Remaining() int { return len(b.parent) - b.attached }

// Build finalizes the tree. It fails unless every node has been attached.
func (b *Builder) Build() (*Tree, error) {
	if b.attached != len(b.parent) {
		return nil, fmt.Errorf("tree: %d of %d nodes still unattached",
			len(b.parent)-b.attached, len(b.parent))
	}
	t := &Tree{root: b.root, parent: b.parent}
	b.parent = nil // the builder is spent; prevent aliasing mutations
	b.outDeg = nil
	return t, nil
}

// FromParents constructs a Tree directly from a parent array (parent[root]
// must be -1) and validates it. The array is copied.
func FromParents(root int, parents []int32, maxOutDegree int) (*Tree, error) {
	t := &Tree{root: int32(root), parent: append([]int32(nil), parents...)}
	if err := t.Validate(maxOutDegree); err != nil {
		return nil, err
	}
	return t, nil
}

// AvgDelay returns the mean sender-to-receiver delay over all nodes except
// the root. Returns 0 for a single-node tree.
func (t *Tree) AvgDelay(dist DistFunc) float64 {
	if t.N() < 2 {
		return 0
	}
	var sum float64
	for _, d := range t.Delays(dist) {
		sum += d
	}
	return sum / float64(t.N()-1)
}

// DepthHistogram returns counts of nodes per hop depth (index = depth).
func (t *Tree) DepthHistogram() []int {
	depths := t.Depths()
	h := make([]int, t.Height()+1)
	for _, d := range depths {
		h[d]++
	}
	return h
}

// SubtreeSizes returns, for every node, the size of the subtree rooted
// there (including the node itself). The root's entry equals N.
func (t *Tree) SubtreeSizes() []int {
	t.adjacency()
	sizes := make([]int, t.N())
	order := t.bfsOrder
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		sizes[v] = 1
		for _, c := range t.Children(int(v)) {
			sizes[v] += sizes[c]
		}
	}
	return sizes
}

// ForwardingLoad returns, for every node, how many descendants depend on it
// (subtree size minus one): the retransmission burden of overlay multicast.
func (t *Tree) ForwardingLoad() []int {
	sizes := t.SubtreeSizes()
	for i := range sizes {
		sizes[i]--
	}
	return sizes
}
