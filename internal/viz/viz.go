// Package viz renders multicast trees over their planar point sets as SVG
// — the standard way to eyeball what the algorithms build (the paper's
// Figure 1/2-style diagrams, but for real trees). Pure stdlib; output is
// deterministic for fixed inputs.
package viz

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"omtree/internal/geom"
	"omtree/internal/tree"
)

// Options tunes the rendering. The zero value is usable.
type Options struct {
	// SizePx is the canvas width and height in pixels (default 800).
	SizePx int
	// NodeRadiusPx is the dot size (default 2, root always 3x).
	NodeRadiusPx float64
	// ColorByDelay shades edges from green (low delay at the child) to red
	// (the maximum delay), requiring Dist.
	ColorByDelay bool
	// Dist supplies edge lengths when ColorByDelay is set; defaults to
	// Euclidean distance over the provided points.
	Dist tree.DistFunc
	// Title is an optional caption.
	Title string
}

// RenderSVG writes the tree over its points as an SVG document. points[i]
// is node i's position.
func RenderSVG(w io.Writer, t *tree.Tree, points []geom.Point2, opts Options) error {
	if t == nil {
		return fmt.Errorf("viz: nil tree")
	}
	if t.N() != len(points) {
		return fmt.Errorf("viz: %d nodes but %d points", t.N(), len(points))
	}
	if opts.SizePx <= 0 {
		opts.SizePx = 800
	}
	if opts.NodeRadiusPx <= 0 {
		opts.NodeRadiusPx = 2
	}
	if opts.Dist == nil {
		opts.Dist = func(i, j int) float64 { return points[i].Dist(points[j]) }
	}

	// Fit the point cloud into the canvas with a 5% margin.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	span := math.Max(maxX-minX, maxY-minY)
	if span == 0 {
		span = 1
	}
	margin := 0.05 * span
	scale := float64(opts.SizePx) / (span + 2*margin)
	px := func(p geom.Point2) (float64, float64) {
		// SVG's y axis grows downward; flip it.
		return (p.X - minX + margin) * scale,
			float64(opts.SizePx) - (p.Y-minY+margin)*scale
	}

	var delays []float64
	var maxDelay float64
	if opts.ColorByDelay {
		delays = t.Delays(opts.Dist)
		for _, d := range delays {
			if d > maxDelay {
				maxDelay = d
			}
		}
		if maxDelay == 0 {
			maxDelay = 1
		}
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.SizePx, opts.SizePx, opts.SizePx, opts.SizePx)
	fmt.Fprintf(bw, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	if opts.Title != "" {
		fmt.Fprintf(bw, `<text x="8" y="16" font-family="monospace" font-size="12">%s</text>`+"\n",
			escapeXML(opts.Title))
	}

	// Edges under nodes.
	fmt.Fprintln(bw, `<g stroke-width="0.7" fill="none">`)
	for i := 0; i < t.N(); i++ {
		p := t.Parent(i)
		if p < 0 {
			continue
		}
		x1, y1 := px(points[p])
		x2, y2 := px(points[i])
		stroke := "#5577aa"
		if opts.ColorByDelay {
			stroke = delayColor(delays[i] / maxDelay)
		}
		fmt.Fprintf(bw, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n",
			x1, y1, x2, y2, stroke)
	}
	fmt.Fprintln(bw, `</g>`)

	// Nodes.
	fmt.Fprintln(bw, `<g fill="#222222">`)
	for i, p := range points {
		x, y := px(p)
		if i == t.Root() {
			fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="#cc2222"/>`+"\n",
				x, y, 3*opts.NodeRadiusPx)
			continue
		}
		fmt.Fprintf(bw, `<circle cx="%.1f" cy="%.1f" r="%.1f"/>`+"\n", x, y, opts.NodeRadiusPx)
	}
	fmt.Fprintln(bw, `</g>`)
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

// delayColor maps a fraction in [0, 1] to a green→red gradient.
func delayColor(frac float64) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	r := int(64 + 191*frac)
	g := int(160 * (1 - frac))
	return fmt.Sprintf("#%02x%02x40", r, g)
}

func escapeXML(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		case '"':
			out = append(out, []rune("&quot;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
