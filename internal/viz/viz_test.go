package viz

import (
	"strings"
	"testing"

	"omtree/internal/core"
	"omtree/internal/geom"
	"omtree/internal/rng"
	"omtree/internal/tree"
)

func buildSample(t *testing.T, n int) (*tree.Tree, []geom.Point2) {
	t.Helper()
	r := rng.New(1)
	recv := r.UniformDiskN(n, 1)
	res, err := core.Build2(geom.Point2{}, recv)
	if err != nil {
		t.Fatal(err)
	}
	pts := append([]geom.Point2{{}}, recv...)
	return res.Tree, pts
}

func TestRenderSVGBasics(t *testing.T) {
	tr, pts := buildSample(t, 100)
	var b strings.Builder
	if err := RenderSVG(&b, tr, pts, Options{Title: "test <tree>"}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<svg", "</svg>", "<line", "<circle", "#cc2222", // root marker
		"test &lt;tree&gt;", // escaped title
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One line per non-root node.
	if got := strings.Count(out, "<line"); got != tr.N()-1 {
		t.Errorf("%d edges drawn, want %d", got, tr.N()-1)
	}
	if got := strings.Count(out, "<circle"); got != tr.N() {
		t.Errorf("%d nodes drawn, want %d", got, tr.N())
	}
}

func TestRenderSVGColorByDelay(t *testing.T) {
	tr, pts := buildSample(t, 100)
	var b strings.Builder
	if err := RenderSVG(&b, tr, pts, Options{ColorByDelay: true}); err != nil {
		t.Fatal(err)
	}
	// Gradient colors replace the flat edge color.
	if strings.Contains(b.String(), "#5577aa") {
		t.Error("flat color used despite ColorByDelay")
	}
}

func TestRenderSVGValidation(t *testing.T) {
	tr, pts := buildSample(t, 10)
	var b strings.Builder
	if err := RenderSVG(&b, nil, pts, Options{}); err == nil {
		t.Error("accepted nil tree")
	}
	if err := RenderSVG(&b, tr, pts[:3], Options{}); err == nil {
		t.Error("accepted mismatched points")
	}
}

func TestRenderSVGDeterministic(t *testing.T) {
	tr, pts := buildSample(t, 50)
	var a, b strings.Builder
	if err := RenderSVG(&a, tr, pts, Options{}); err != nil {
		t.Fatal(err)
	}
	if err := RenderSVG(&b, tr, pts, Options{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("rendering not deterministic")
	}
}

func TestRenderSVGCoincidentPoints(t *testing.T) {
	// Zero-span clouds must not divide by zero.
	b, err := tree.NewBuilder(3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.MustAttach(1, 0)
	b.MustAttach(2, 0)
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pts := []geom.Point2{{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 1}}
	var out strings.Builder
	if err := RenderSVG(&out, tr, pts, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "<svg") {
		t.Error("no SVG emitted")
	}
}

func TestDelayColorRange(t *testing.T) {
	for _, frac := range []float64{-1, 0, 0.5, 1, 2} {
		c := delayColor(frac)
		if len(c) != 7 || c[0] != '#' {
			t.Errorf("delayColor(%v) = %q", frac, c)
		}
	}
}
