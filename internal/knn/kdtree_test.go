package knn

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"omtree/internal/geom"
	"omtree/internal/rng"
)

// bruteNearest is the reference implementation.
func bruteNearest(pts []geom.Point2, active []bool, q geom.Point2, accept func(int) bool) int {
	best, bestD2 := -1, math.Inf(1)
	for i, p := range pts {
		if !active[i] || (accept != nil && !accept(i)) {
			continue
		}
		if d2 := p.Dist2(q); d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("accepted empty point set")
	}
}

func TestNearestMatchesBrute(t *testing.T) {
	r := rng.New(1)
	pts := r.UniformDiskN(500, 1)
	tree, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	active := make([]bool, len(pts))
	// Activate a random half.
	for i := range pts {
		if r.Float64() < 0.5 {
			tree.Activate(i)
			active[i] = true
		}
	}
	for trial := 0; trial < 500; trial++ {
		q := r.UniformDisk(1.2)
		got := tree.Nearest(q, nil)
		want := bruteNearest(pts, active, q, nil)
		if got != want {
			gd, wd := math.Inf(1), math.Inf(1)
			if got >= 0 {
				gd = pts[got].Dist(q)
			}
			if want >= 0 {
				wd = pts[want].Dist(q)
			}
			if math.Abs(gd-wd) > 1e-12 { // distinct points at identical distance are fine
				t.Fatalf("Nearest(%v) = %d (%v), want %d (%v)", q, got, gd, want, wd)
			}
		}
	}
}

func TestNearestWithAcceptFilter(t *testing.T) {
	r := rng.New(2)
	pts := r.UniformDiskN(300, 1)
	tree, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	active := make([]bool, len(pts))
	for i := range pts {
		tree.Activate(i)
		active[i] = true
	}
	evenOnly := func(id int) bool { return id%2 == 0 }
	for trial := 0; trial < 200; trial++ {
		q := r.UniformDisk(1)
		got := tree.Nearest(q, evenOnly)
		want := bruteNearest(pts, active, q, evenOnly)
		if got != want && (got < 0 || want < 0 ||
			math.Abs(pts[got].Dist(q)-pts[want].Dist(q)) > 1e-12) {
			t.Fatalf("filtered Nearest mismatch: %d vs %d", got, want)
		}
		if got%2 != 0 {
			t.Fatalf("filter violated: %d", got)
		}
	}
}

func TestActivateDeactivate(t *testing.T) {
	pts := []geom.Point2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	tree, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point2{X: 0.1, Y: 0}
	if got := tree.Nearest(q, nil); got != -1 {
		t.Fatalf("empty tree returned %d", got)
	}
	tree.Activate(2)
	if got := tree.Nearest(q, nil); got != 2 {
		t.Fatalf("got %d, want 2", got)
	}
	tree.Activate(0)
	if got := tree.Nearest(q, nil); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
	tree.Deactivate(0)
	if got := tree.Nearest(q, nil); got != 2 {
		t.Fatalf("after deactivate got %d, want 2", got)
	}
	// Idempotency.
	tree.Deactivate(0)
	tree.Activate(2)
	if got := tree.Nearest(q, nil); got != 2 {
		t.Fatal("idempotent ops broke state")
	}
	if tree.Active(0) || !tree.Active(2) {
		t.Error("Active() flags wrong")
	}
}

func TestKNearestMatchesBrute(t *testing.T) {
	r := rng.New(3)
	pts := r.UniformDiskN(400, 1)
	tree, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		tree.Activate(i)
	}
	for trial := 0; trial < 100; trial++ {
		q := r.UniformDisk(1)
		k := 1 + r.Intn(12)
		got := tree.KNearest(q, k, nil)
		if len(got) != k {
			t.Fatalf("KNearest returned %d, want %d", len(got), k)
		}
		// Reference: sort all by distance.
		ref := make([]int, len(pts))
		for i := range ref {
			ref[i] = i
		}
		sort.Slice(ref, func(a, b int) bool {
			da, db := pts[ref[a]].Dist2(q), pts[ref[b]].Dist2(q)
			if da != db {
				return da < db
			}
			return ref[a] < ref[b]
		})
		for i := 0; i < k; i++ {
			if math.Abs(pts[got[i]].Dist2(q)-pts[ref[i]].Dist2(q)) > 1e-12 {
				t.Fatalf("k=%d position %d: got dist %v, want %v",
					k, i, pts[got[i]].Dist2(q), pts[ref[i]].Dist2(q))
			}
		}
		// Sorted output.
		for i := 1; i < len(got); i++ {
			if pts[got[i]].Dist2(q) < pts[got[i-1]].Dist2(q)-1e-15 {
				t.Fatal("KNearest output not sorted")
			}
		}
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	pts := []geom.Point2{{X: 0, Y: 0}, {X: 1, Y: 1}}
	tree, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.KNearest(geom.Point2{}, 0, nil); got != nil {
		t.Error("k=0 should return nil")
	}
	tree.Activate(0)
	got := tree.KNearest(geom.Point2{}, 5, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("got %v", got)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geom.Point2, 20)
	for i := range pts {
		pts[i] = geom.Point2{X: 0.5, Y: 0.5}
	}
	tree, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		tree.Activate(i)
	}
	if got := tree.Nearest(geom.Point2{}, nil); got < 0 {
		t.Fatal("no nearest among duplicates")
	}
	got := tree.KNearest(geom.Point2{}, 20, nil)
	if len(got) != 20 {
		t.Fatalf("got %d duplicates", len(got))
	}
	// Deactivate them all; queries must go empty.
	for i := range pts {
		tree.Deactivate(i)
	}
	if got := tree.Nearest(geom.Point2{}, nil); got != -1 {
		t.Fatalf("deactivated tree returned %d", got)
	}
}

func TestNearestQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint8, qx, qy int8) bool {
		r := rng.New(seed)
		n := int(nRaw)%100 + 1
		pts := r.UniformDiskN(n, 1)
		tree, err := New(pts)
		if err != nil {
			return false
		}
		active := make([]bool, n)
		for i := 0; i < n; i++ {
			if r.Float64() < 0.6 {
				tree.Activate(i)
				active[i] = true
			}
		}
		q := geom.Point2{X: float64(qx) / 64, Y: float64(qy) / 64}
		got := tree.Nearest(q, nil)
		want := bruteNearest(pts, active, q, nil)
		if got == want {
			return true
		}
		if got < 0 || want < 0 {
			return false
		}
		return math.Abs(pts[got].Dist2(q)-pts[want].Dist2(q)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
