// Package knn provides a 2-D k-d tree with dynamic activation — the
// nearest-neighbor substrate that scales the attachment heuristics past
// the O(n^2) wall. The tree is built once over all points; points start
// inactive and are switched on as the overlay attaches them, so "nearest
// attached node with spare degree" queries run in O(log n) expected time.
package knn

import (
	"fmt"
	"math"
	"sort"

	"omtree/internal/geom"
)

// Tree is a static-topology k-d tree over a fixed point set with per-point
// activation flags. The zero value is unusable; call New.
type Tree struct {
	pts    []geom.Point2
	idx    []int32 // point ids in k-d order
	active []bool  // by point id
	// nodes mirror idx: node i splits on axis depth%2 with subtree range
	// captured by the recursion; activeCount[i] counts active points in the
	// subtree rooted at heap position i, enabling pruning of dead subtrees.
	activeCount []int32
}

// New builds the tree over pts. All points start inactive.
func New(pts []geom.Point2) (*Tree, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("knn: no points")
	}
	t := &Tree{
		pts:         pts,
		idx:         make([]int32, len(pts)),
		active:      make([]bool, len(pts)),
		activeCount: make([]int32, len(pts)),
	}
	for i := range t.idx {
		t.idx[i] = int32(i)
	}
	t.build(0, len(t.idx), 0)
	return t, nil
}

// build arranges idx[lo:hi] so the median (by the splitting axis) sits at
// the midpoint, recursively.
func (t *Tree) build(lo, hi, depth int) {
	if hi-lo <= 1 {
		return
	}
	mid := (lo + hi) / 2
	axis := depth % 2
	seg := t.idx[lo:hi]
	sort.Slice(seg, func(a, b int) bool {
		pa, pb := t.pts[seg[a]], t.pts[seg[b]]
		if axis == 0 {
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			return seg[a] < seg[b]
		}
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
		return seg[a] < seg[b]
	})
	t.build(lo, mid, depth+1)
	t.build(mid+1, hi, depth+1)
}

// Activate switches a point on. Idempotent.
func (t *Tree) Activate(id int) {
	if t.active[id] {
		return
	}
	t.active[id] = true
	t.bumpCounts(id, 1)
}

// Deactivate switches a point off. Idempotent.
func (t *Tree) Deactivate(id int) {
	if !t.active[id] {
		return
	}
	t.active[id] = false
	t.bumpCounts(id, -1)
}

// Active reports a point's state.
func (t *Tree) Active(id int) bool { return t.active[id] }

// bumpCounts walks the recursion path that contains id and adjusts the
// active counters.
func (t *Tree) bumpCounts(id, delta int) {
	lo, hi, depth := 0, len(t.idx), 0
	for {
		t.activeCount[(lo+hi)/2] += int32(delta) // counter keyed by subtree midpoint
		if hi-lo <= 1 {
			return
		}
		mid := (lo + hi) / 2
		if t.idx[mid] == int32(id) {
			return
		}
		if t.onLeft(id, mid, depth) {
			hi = mid
		} else {
			lo = mid + 1
		}
		depth++
		if lo >= hi {
			return
		}
	}
}

// onLeft decides which side of the splitter at position mid the point id
// falls on, consistent with build's ordering (ties by id).
func (t *Tree) onLeft(id, mid, depth int) bool {
	p, s := t.pts[id], t.pts[t.idx[mid]]
	if depth%2 == 0 {
		if p.X != s.X {
			return p.X < s.X
		}
	} else {
		if p.Y != s.Y {
			return p.Y < s.Y
		}
	}
	return int32(id) < t.idx[mid]
}

// Nearest returns the active point nearest to q that satisfies accept (nil
// accepts all active points), or -1 when none qualifies. accept lets
// callers filter by residual degree without rebuilding the tree.
func (t *Tree) Nearest(q geom.Point2, accept func(id int) bool) int {
	best := -1
	bestD2 := math.Inf(1)
	t.search(q, 0, len(t.idx), 0, accept, &best, &bestD2)
	return best
}

// NearestDist returns Nearest plus the distance (Inf when none).
func (t *Tree) NearestDist(q geom.Point2, accept func(id int) bool) (int, float64) {
	best := -1
	bestD2 := math.Inf(1)
	t.search(q, 0, len(t.idx), 0, accept, &best, &bestD2)
	if best < 0 {
		return -1, math.Inf(1)
	}
	return best, math.Sqrt(bestD2)
}

func (t *Tree) search(q geom.Point2, lo, hi, depth int, accept func(id int) bool, best *int, bestD2 *float64) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	if t.activeCount[mid] == 0 {
		return // no active points anywhere in this subtree
	}
	id := t.idx[mid]
	if t.active[id] && (accept == nil || accept(int(id))) {
		if d2 := t.pts[id].Dist2(q); d2 < *bestD2 {
			*best, *bestD2 = int(id), d2
		}
	}
	if hi-lo == 1 {
		return
	}
	var delta float64
	if depth%2 == 0 {
		delta = q.X - t.pts[id].X
	} else {
		delta = q.Y - t.pts[id].Y
	}
	// Descend the near side first, then the far side only if the splitting
	// plane is closer than the best match.
	if delta < 0 {
		t.search(q, lo, mid, depth+1, accept, best, bestD2)
		if delta*delta < *bestD2 {
			t.search(q, mid+1, hi, depth+1, accept, best, bestD2)
		}
	} else {
		t.search(q, mid+1, hi, depth+1, accept, best, bestD2)
		if delta*delta < *bestD2 {
			t.search(q, lo, mid, depth+1, accept, best, bestD2)
		}
	}
}

// KNearest returns up to k active accepted points nearest q, closest
// first.
func (t *Tree) KNearest(q geom.Point2, k int, accept func(id int) bool) []int {
	if k <= 0 {
		return nil
	}
	h := &resultHeap{}
	t.searchK(q, 0, len(t.idx), 0, k, accept, h)
	out := make([]int, len(*h))
	// Heap pops worst-first; fill back to front.
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.pop().id
	}
	return out
}

func (t *Tree) searchK(q geom.Point2, lo, hi, depth, k int, accept func(id int) bool, h *resultHeap) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	if t.activeCount[mid] == 0 {
		return
	}
	id := t.idx[mid]
	if t.active[id] && (accept == nil || accept(int(id))) {
		h.offer(result{id: int(id), d2: t.pts[id].Dist2(q)}, k)
	}
	if hi-lo == 1 {
		return
	}
	var delta float64
	if depth%2 == 0 {
		delta = q.X - t.pts[id].X
	} else {
		delta = q.Y - t.pts[id].Y
	}
	near, farLo, farHi := [2]int{lo, mid}, mid+1, hi
	if delta >= 0 {
		near, farLo, farHi = [2]int{mid + 1, hi}, lo, mid
	}
	t.searchK(q, near[0], near[1], depth+1, k, accept, h)
	if len(*h) < k || delta*delta < h.worst() {
		t.searchK(q, farLo, farHi, depth+1, k, accept, h)
	}
}

// result is one candidate in the bounded max-heap.
type result struct {
	id int
	d2 float64
}

// resultHeap is a max-heap by distance, capped at k by offer.
type resultHeap []result

func (h resultHeap) worst() float64 { return h[0].d2 }

func (h *resultHeap) offer(r result, k int) {
	if len(*h) < k {
		*h = append(*h, r)
		h.up(len(*h) - 1)
		return
	}
	if r.d2 >= (*h)[0].d2 {
		return
	}
	(*h)[0] = r
	h.down(0)
}

func (h *resultHeap) pop() result {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	return top
}

func (h resultHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].d2 >= h[i].d2 {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

func (h resultHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h[l].d2 > h[largest].d2 {
			largest = l
		}
		if r < n && h[r].d2 > h[largest].d2 {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
