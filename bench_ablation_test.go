package omtree_test

// Ablation benchmarks for the design choices called out in DESIGN.md:
// grid depth (forced k below the automatic choice) and wiring variant at a
// fixed input. The reported "delay" metrics show what each choice buys.

import (
	"fmt"
	"testing"

	"omtree"
)

// BenchmarkAblationForceK pins the grid ring count below the automatic
// choice: shallower grids mean larger cells, more Bisection work per cell
// and worse delay — the justification for "choose k as large as possible".
func BenchmarkAblationForceK(b *testing.B) {
	const n = 50000
	recv := omtree.NewRand(1234).UniformDiskN(n, 1)
	auto, err := omtree.Build(omtree.Point2{}, recv)
	if err != nil {
		b.Fatal(err)
	}
	for _, dk := range []int{0, 2, 4, 6} {
		k := auto.K - dk
		if k < 1 {
			continue
		}
		b.Run(fmt.Sprintf("k=%d(auto-%d)", k, dk), func(b *testing.B) {
			var last *omtree.Result
			for i := 0; i < b.N; i++ {
				res, err := omtree.Build(omtree.Point2{}, recv, omtree.WithForceK(k))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Radius, "delay")
			b.ReportMetric(last.Bound, "bound")
		})
	}
}

// BenchmarkAblationVariant compares the three wirings on identical inputs:
// the delay cost of tightening the degree cap, at identical build cost.
func BenchmarkAblationVariant(b *testing.B) {
	const n = 50000
	recv := omtree.NewRand(5678).UniformDiskN(n, 1)
	for _, tc := range []struct {
		name string
		deg  int
	}{
		{"natural-deg6", 6},
		{"hybrid-deg4", 4},
		{"binary-deg2", 2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var last *omtree.Result
			for i := 0; i < b.N; i++ {
				res, err := omtree.Build(omtree.Point2{}, recv, omtree.WithMaxOutDegree(tc.deg))
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Radius, "delay")
			b.ReportMetric(float64(last.Tree.MaxOutDegree()), "max-degree")
		})
	}
}

// BenchmarkAblationDensity stresses the uniform-density assumption with the
// paper's epsilon-floor mixture: clustered receivers with a 20% uniform
// floor. Asymptotic optimality survives; the constants degrade.
func BenchmarkAblationDensity(b *testing.B) {
	const n = 50000
	r := omtree.NewRand(91011)
	uniform := r.UniformDiskN(n, 1)
	clustered := r.MixedDensityDiskN(n, 1, 0.2, []omtree.Cluster{
		{Center: omtree.Point2{X: 0.5, Y: 0.2}, Sigma: 0.06, Weight: 2},
		{Center: omtree.Point2{X: -0.4, Y: -0.3}, Sigma: 0.1, Weight: 1},
	})
	for _, tc := range []struct {
		name string
		recv []omtree.Point2
	}{{"uniform", uniform}, {"clustered-eps0.2", clustered}} {
		b.Run(tc.name, func(b *testing.B) {
			var last *omtree.Result
			for i := 0; i < b.N; i++ {
				res, err := omtree.Build(omtree.Point2{}, tc.recv)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Radius/last.Scale, "delay-ratio")
			b.ReportMetric(float64(last.K), "rings")
		})
	}
}
