// Coordinates scenario: the full pipeline the paper assumes (§I) —
// measured inter-host delays are embedded into Euclidean space with a
// GNP-style landmark method, the multicast tree is built on the embedded
// points, and the tree is then evaluated against the TRUE delays to see
// what embedding error costs.
package main

import (
	"fmt"
	"log"
	"sort"

	"omtree"
)

func main() {
	// "Measured" delays come from a synthetic transit-stub internet: a
	// backbone ring with chords, stub networks per transit router, hosts
	// per stub, shortest-path routing.
	r := omtree.NewRand(99)
	matrix, err := omtree.TransitStub(omtree.TransitStubConfig{
		TransitRouters: 8,
		StubsPerRouter: 3,
		HostsPerStub:   4, // 96 hosts
	}, r)
	if err != nil {
		log.Fatal(err)
	}
	n := matrix.N()
	fmt.Printf("synthetic internet: %d hosts, mean pairwise delay %.4f\n",
		n, matrix.MeanDelay())

	// Embed into 3-D Euclidean space (GNP recommends d >= 3).
	emb, err := omtree.Embed(matrix, omtree.EmbedConfig{Dim: 3, Landmarks: 8, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	errs := omtree.EmbeddingErrors(matrix, emb)
	sort.Float64s(errs)
	fmt.Printf("embedding: %d landmarks, median relative error %.1f%%, p90 %.1f%%\n",
		len(emb.LandmarkIDs), 100*errs[len(errs)/2], 100*errs[len(errs)*9/10])

	// Host 0 is the multicast source; build on the embedded coordinates.
	source := emb.Coords[0]
	receivers := make([]omtree.Vec, 0, n-1)
	for i := 1; i < n; i++ {
		receivers = append(receivers, emb.Coords[i])
	}
	res, err := omtree.BuildND(source, receivers, omtree.WithMaxOutDegree(4))
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate in BOTH metrics: the embedded estimate the algorithm saw,
	// and the true delays the packets will experience.
	trueDist := func(i, j int) float64 { return matrix.At(i, j) } // ids coincide: node i = host i
	trueRadius := res.Tree.Radius(trueDist)
	fmt.Printf("\ntree (out-degree <= %d, %v variant):\n", res.MaxOutDegree, res.Variant)
	fmt.Printf("  radius in embedded space: %.4f\n", res.Radius)
	fmt.Printf("  radius in true delays:    %.4f\n", trueRadius)

	// How far is that from doing the best possible with perfect knowledge?
	// Compare against the greedy heuristic run directly on the true matrix,
	// and the unconstrained direct-unicast bound.
	greedy, err := omtree.GreedyClosest(n, 0, trueDist, 4)
	if err != nil {
		log.Fatal(err)
	}
	var direct float64
	for i := 1; i < n; i++ {
		if d := matrix.At(0, i); d > direct {
			direct = d
		}
	}
	fmt.Printf("  greedy on true delays:    %.4f\n", greedy.Radius(trueDist))
	fmt.Printf("  direct-unicast bound:     %.4f\n", direct)
	fmt.Println("\nthe embedded build pays only the embedding error — no live",
		"\nmeasurements per join, which is the operational point of [12].")
}
