// Quickstart: build a minimum-delay degree-constrained multicast tree over
// random hosts and inspect the quantities the library certifies.
package main

import (
	"fmt"
	"log"

	"omtree"
)

func main() {
	// 2000 receivers uniformly at random in the unit disk; the source
	// multicasts from the center. Delays are Euclidean distances (the
	// paper's network-coordinates model).
	r := omtree.NewRand(42)
	receivers := r.UniformDiskN(2000, 1)
	source := omtree.Point2{}

	// Build the out-degree-6 Polar_Grid tree (the paper's main algorithm).
	res, err := omtree.Build(source, receivers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a %v tree over %d nodes\n", res.Variant, res.Tree.N())
	fmt.Printf("  grid rings k:        %d\n", res.K)
	fmt.Printf("  max delay (radius):  %.4f\n", res.Radius)
	fmt.Printf("  core delay:          %.4f\n", res.CoreDelay)
	fmt.Printf("  paper bound (7):     %.4f\n", res.Bound)

	// The unconstrained lower bound: the farthest receiver's direct delay.
	// No tree, whatever its degree, can beat it.
	fmt.Printf("  lower bound (star):  %.4f\n", res.Scale)
	fmt.Printf("  optimality gap:      <= %.1f%%\n", 100*(res.Radius/res.Scale-1))

	// Bandwidth-constrained hosts? The binary variant caps out-degree at 2.
	res2, err := omtree.Build(source, receivers, omtree.WithMaxOutDegree(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-degree 2 variant: radius %.4f (max degree %d)\n",
		res2.Radius, res2.Tree.MaxOutDegree())

	// Trees are plain data: walk a path, export DOT, serialize JSON.
	dist := omtree.Dist(source, receivers)
	delays := res.Tree.Delays(dist)
	worst := 0
	for i, d := range delays {
		if d > delays[worst] {
			worst = i
		}
	}
	fmt.Printf("worst receiver %d reached via %d overlay hops\n",
		worst, len(res.Tree.PathToRoot(worst))-1)
}
