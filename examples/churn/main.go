// Churn scenario: a live session where members join and leave continuously
// — the decentralized protocol the paper names as future work. The example
// tracks delay quality and control-message cost through a flash crowd, a
// departure wave, maintenance rounds, and a coordinated rebuild.
package main

import (
	"errors"
	"fmt"
	"log"

	"omtree"
)

func main() {
	const expected = 3000
	source := omtree.Point2{}
	overlay, err := omtree.NewOverlay(omtree.OverlayConfig{
		Source:       source,
		Scale:        1,
		K:            omtree.SuggestOverlayK(expected),
		MaxOutDegree: 6,
		// Tuning for the kinetic epilogue below: re-estimate coordinates
		// every 3 maintenance rounds and repair locally once drift degrades
		// the certified radius by 5%. Inert until SetDrift attaches a model.
		Drift: omtree.OverlayDriftConfig{
			ReestimatePeriod:     3,
			DegradationThreshold: 1.05,
			Policy:               omtree.OverlayRepairLocal,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Record the session's causal timeline: every join, retry, fault-plane
	// verdict, heartbeat, and repair lands on one bounded ring. Tracing
	// never changes the session — it only watches it.
	rec := omtree.NewTraceRecorder(1 << 18)
	overlay.Trace(rec)
	r := omtree.NewRand(777)

	report := func(phase string) {
		radius, err := overlay.Radius()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s members=%5d radius=%.3f\n", phase, overlay.N()-1, radius)
	}

	// Flash crowd: 3000 members join one by one; each join costs O(log n)
	// control messages (routing down the representative core).
	var joinMsgs int
	ids := make([]int, 0, expected)
	for i := 0; i < expected; i++ {
		id, st, err := overlay.Join(r.UniformDisk(1))
		if err != nil {
			log.Fatal(err)
		}
		joinMsgs += st.Messages
		ids = append(ids, id)
	}
	report("after flash crowd:")
	fmt.Printf("%-28s %.1f control messages per join (k=%d)\n", "",
		float64(joinMsgs)/float64(expected), omtree.SuggestOverlayK(expected))

	// Departure wave: a third of the membership leaves; orphans are
	// adopted locally.
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:expected/3] {
		if _, err := overlay.Leave(id); err != nil {
			log.Fatal(err)
		}
	}
	report("after departure wave:")

	// Periodic maintenance: local re-homing forgets unlucky join-order
	// decisions.
	for round := 0; ; round++ {
		st, err := overlay.Optimize()
		if err != nil {
			log.Fatal(err)
		}
		if st.Moves == 0 || round >= 4 {
			break
		}
	}
	report("after maintenance rounds:")

	// Coordinated rebuild: the source re-runs the centralized algorithm
	// over the surviving membership — O(n) messages, optimal tree.
	st, err := overlay.Rebuild()
	if err != nil {
		log.Fatal(err)
	}
	report("after coordinated rebuild:")
	fmt.Printf("%-28s rebuild cost: %d messages\n", "", st.Messages)

	// The rebuilt session keeps serving churn.
	for i := 0; i < 200; i++ {
		if _, _, err := overlay.Join(r.UniformDisk(1)); err != nil {
			log.Fatal(err)
		}
	}
	report("after 200 more joins:")

	// The network turns hostile: 15% of control messages vanish, some are
	// duplicated, and the occasional peer crashes mid-conversation. Joins
	// retry with backoff (and may give up); heartbeats keep running.
	plane, err := omtree.NewFaultPlane(omtree.FaultScenario{
		Seed: 778, LossRate: 0.15, DupRate: 0.05, CrashRate: 0.002, DelayMean: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fcfg := omtree.DefaultOverlayFaultConfig()
	if err := overlay.SetTransport(plane, fcfg); err != nil {
		log.Fatal(err)
	}
	refused := 0
	for i := 0; i < 300; i++ {
		if _, _, err := overlay.Join(r.UniformDisk(1)); err != nil {
			refused++
		}
		if i%50 == 49 {
			if _, err := overlay.MaintenanceRound(); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("%-28s %d joins refused, %d retries, %d mid-op crashes, coverage %.1f%%\n",
		"under 15% message loss:", refused, overlay.Stats.Retries,
		overlay.Stats.InjectedCrashes, 100*overlay.CoverageRatio())

	// Loss stops; the failure detector converges the overlay back to a
	// clean structural audit within a bounded number of heartbeat rounds.
	plane.SetActive(false)
	rounds, err := overlay.Converge(fcfg.ConfirmAfter + 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s audit clean after %d heartbeat rounds\n", "self-healed:", rounds)
	report("after self-healing:")

	// A backbone failure splits the network in two. Subtrees cut off from
	// the source elect interim coordinators and keep serving joins in
	// degraded mode; token-bucket admission control sheds the worst of the
	// join storm with retry-after hints instead of timing everyone out.
	plane2, err := omtree.NewFaultPlane(omtree.FaultScenario{Seed: 779, LossRate: 0.02})
	if err != nil {
		log.Fatal(err)
	}
	if err := overlay.SetTransport(plane2, fcfg); err != nil {
		log.Fatal(err)
	}
	if err := overlay.SetAdmission(omtree.OverlayAdmission{RatePerRound: 2, QueueLimit: 6}); err != nil {
		log.Fatal(err)
	}
	if err := plane2.Partition(2); err != nil {
		log.Fatal(err)
	}
	queued, shed := 0, 0
	for round := 0; round < fcfg.ConfirmAfter+4; round++ {
		if _, err := overlay.MaintenanceRound(); err != nil {
			log.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			_, _, err := overlay.Join(r.UniformDisk(1))
			switch {
			case errors.Is(err, omtree.ErrJoinQueued):
				queued++
			case err != nil:
				var ra *omtree.RetryAfter
				if errors.As(err, &ra) {
					shed++
				}
			}
		}
	}
	fmt.Printf("%-28s %d islands serving %d degraded joins; %d queued, %d shed\n",
		"during the partition:", overlay.Islands(), overlay.Stats.DegradedJoins, queued, shed)

	// The backbone comes back: reconciliation re-grafts each island under
	// its proper grid anchor and the audit goes clean again.
	plane2.Heal()
	plane2.SetActive(false)
	rounds, err = overlay.Converge(fcfg.ConfirmAfter + 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %d reconciliations, %d island merges, audit clean after %d rounds\n",
		"after the heal:", overlay.Stats.Reconciliations, overlay.Stats.IslandMerges, rounds)
	report("after reconciliation:")

	// Kinetic epilogue: the members stop churning but their coordinates
	// don't — route changes keep re-mapping hosts to new vantage points.
	// Periodic re-estimation sweeps refresh the coordinates, and the eq. 7
	// certificate monitor repairs the tree through dirty cells only,
	// falling back to a full rebuild when too much of the grid moved.
	if _, err := overlay.Rebuild(); err != nil { // freeze a fresh certificate
		log.Fatal(err)
	}
	drift, err := omtree.NewDriftModel(omtree.DriftModelConfig{
		Seed: 780, JumpRate: 0.004, JumpMean: 0.15,
		InflationPerEpoch: 0.05, Bound: 0.99,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := overlay.SetDrift(drift); err != nil {
		log.Fatal(err)
	}
	for round := 0; round < 12; round++ {
		if _, err := overlay.MaintenanceRound(); err != nil {
			log.Fatal(err)
		}
	}
	ratio, _ := overlay.CertificateRatio()
	fmt.Printf("%-28s %d node moves applied, %d local repairs, %d full fallbacks, certificate ratio %.3f\n",
		"under coordinate drift:", overlay.Stats.DriftedNodes,
		overlay.Stats.LocalRepairs, overlay.Stats.FullRebuildFallbacks, ratio)
	report("after kinetic repairs:")

	tr, _, _, err := overlay.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Validate(6); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal tree validated: spanning, acyclic, out-degree <= 6")
	fmt.Printf("session totals: %+v\n", overlay.Stats)
	fmt.Printf("trace: %d events buffered (%d evicted from the %d-event ring); write rec.WriteChromeJSON to inspect in Perfetto\n",
		rec.Len(), rec.Dropped(), rec.Cap())
}
