// Churn scenario: a live session where members join and leave continuously
// — the decentralized protocol the paper names as future work. The example
// tracks delay quality and control-message cost through a flash crowd, a
// departure wave, maintenance rounds, and a coordinated rebuild.
package main

import (
	"fmt"
	"log"

	"omtree"
)

func main() {
	const expected = 3000
	source := omtree.Point2{}
	overlay, err := omtree.NewOverlay(omtree.OverlayConfig{
		Source:       source,
		Scale:        1,
		K:            omtree.SuggestOverlayK(expected),
		MaxOutDegree: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	r := omtree.NewRand(777)

	report := func(phase string) {
		radius, err := overlay.Radius()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s members=%5d radius=%.3f\n", phase, overlay.N()-1, radius)
	}

	// Flash crowd: 3000 members join one by one; each join costs O(log n)
	// control messages (routing down the representative core).
	var joinMsgs int
	ids := make([]int, 0, expected)
	for i := 0; i < expected; i++ {
		id, st, err := overlay.Join(r.UniformDisk(1))
		if err != nil {
			log.Fatal(err)
		}
		joinMsgs += st.Messages
		ids = append(ids, id)
	}
	report("after flash crowd:")
	fmt.Printf("%-28s %.1f control messages per join (k=%d)\n", "",
		float64(joinMsgs)/float64(expected), omtree.SuggestOverlayK(expected))

	// Departure wave: a third of the membership leaves; orphans are
	// adopted locally.
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for _, id := range ids[:expected/3] {
		if _, err := overlay.Leave(id); err != nil {
			log.Fatal(err)
		}
	}
	report("after departure wave:")

	// Periodic maintenance: local re-homing forgets unlucky join-order
	// decisions.
	for round := 0; ; round++ {
		st, err := overlay.Optimize()
		if err != nil {
			log.Fatal(err)
		}
		if st.Moves == 0 || round >= 4 {
			break
		}
	}
	report("after maintenance rounds:")

	// Coordinated rebuild: the source re-runs the centralized algorithm
	// over the surviving membership — O(n) messages, optimal tree.
	st, err := overlay.Rebuild()
	if err != nil {
		log.Fatal(err)
	}
	report("after coordinated rebuild:")
	fmt.Printf("%-28s rebuild cost: %d messages\n", "", st.Messages)

	// The rebuilt session keeps serving churn.
	for i := 0; i < 200; i++ {
		if _, _, err := overlay.Join(r.UniformDisk(1)); err != nil {
			log.Fatal(err)
		}
	}
	report("after 200 more joins:")

	tr, _, _, err := overlay.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Validate(6); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal tree validated: spanning, acyclic, out-degree <= 6")
	fmt.Printf("session totals: %+v\n", overlay.Stats)
}
