// Conference scenario: a speaker streams to participants whose home uplinks
// forward at most two copies (the paper's out-degree-2 regime). The example
// shows the degree-2 delay premium over degree-6, audits the heuristic
// against the exhaustive optimum on a small breakout group, and demonstrates
// the §V convergence: more participants -> relatively better trees.
package main

import (
	"fmt"
	"log"

	"omtree"
)

func main() {
	r := omtree.NewRand(2024)

	// A 300-participant plenary, participants spread across the region.
	participants := r.UniformDiskN(300, 1)
	speaker := omtree.Point2{}

	deg2, err := omtree.Build(speaker, participants, omtree.WithMaxOutDegree(2))
	if err != nil {
		log.Fatal(err)
	}
	deg6, err := omtree.Build(speaker, participants) // what beefier uplinks would buy
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plenary with %d participants:\n", len(participants))
	fmt.Printf("  out-degree 2 (home uplinks): max delay %.4f\n", deg2.Radius)
	fmt.Printf("  out-degree 6 (fat uplinks):  max delay %.4f\n", deg6.Radius)
	fmt.Printf("  degree-2 premium: %.1f%% (overhead roughly doubles, §V)\n",
		100*(deg2.Radius-deg6.Radius)/deg6.Radius)

	// Breakout group of 7: small enough to check against the true optimum.
	breakout := r.UniformDiskN(7, 1)
	pts := append([]omtree.Point2{speaker}, breakout...)
	dist := func(i, j int) float64 { return pts[i].Dist(pts[j]) }
	_, opt, err := omtree.ExactOptimal(len(pts), 0, dist, 2)
	if err != nil {
		log.Fatal(err)
	}
	small, err := omtree.Build(speaker, breakout, omtree.WithMaxOutDegree(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbreakout group of %d: heuristic %.4f vs optimum %.4f (ratio %.2f)\n",
		len(breakout), small.Radius, opt, small.Radius/opt)

	// Convergence (Theorem 2): as attendance grows, the degree-2 tree's
	// delay approaches the unconstrained lower bound.
	fmt.Println("\nconvergence with attendance (out-degree 2):")
	for _, n := range []int{100, 1000, 10000, 100000} {
		crowd := r.UniformDiskN(n, 1)
		res, err := omtree.Build(speaker, crowd, omtree.WithMaxOutDegree(2))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%6d: delay/lower-bound = %.3f (k=%d rings)\n",
			n, res.Radius/res.Scale, res.K)
	}
}
