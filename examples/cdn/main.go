// CDN scenario: a content origin pushes a live stream to edge servers
// clustered in metro areas. Each server can feed at most 4 peers (uplink
// budget). The example compares Polar_Grid against the heuristics a CDN
// might reach for first, then simulates delivery with mid-session edge
// failures and repair.
package main

import (
	"fmt"
	"log"

	"omtree"
)

func main() {
	// Audience: 1500 edge servers in three metro clusters plus a 20%
	// geographically uniform tail — the paper's epsilon-bounded density.
	r := omtree.NewRand(7)
	metros := []omtree.Cluster{
		{Center: omtree.Point2{X: 0.55, Y: 0.25}, Sigma: 0.07, Weight: 3}, // big metro
		{Center: omtree.Point2{X: -0.45, Y: 0.40}, Sigma: 0.06, Weight: 2},
		{Center: omtree.Point2{X: -0.10, Y: -0.60}, Sigma: 0.09, Weight: 2},
	}
	edges := r.MixedDensityDiskN(1500, 1, 0.2, metros)
	origin := omtree.Point2{} // the origin datacenter
	dist := omtree.Dist(origin, edges)
	total := len(edges) + 1
	const uplink = 4

	// Polar_Grid (binary variant fits under any degree cap >= 2; the
	// natural variant needs 6, so at uplink 4 the library picks binary).
	res, err := omtree.Build(origin, edges, omtree.WithMaxOutDegree(uplink))
	if err != nil {
		log.Fatal(err)
	}

	// The heuristics a CDN might deploy instead.
	greedy, err := omtree.GreedyClosest(total, 0, dist, uplink)
	if err != nil {
		log.Fatal(err)
	}
	bl, err := omtree.BandwidthLatency(total, 0, dist, uplink, nil)
	if err != nil {
		log.Fatal(err)
	}
	kary, err := omtree.BalancedKary(total, 0, dist, uplink)
	if err != nil {
		log.Fatal(err)
	}
	star, err := omtree.Star(total, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("live-stream fanout over %d edge servers, uplink budget %d:\n", len(edges), uplink)
	fmt.Printf("  unconstrained lower bound: %.4f\n", star.Radius(dist))
	fmt.Printf("  Polar_Grid (%v):       %.4f\n", res.Variant, res.Radius)
	fmt.Printf("  greedy closest-attach:     %.4f\n", greedy.Radius(dist))
	fmt.Printf("  bandwidth-latency:         %.4f\n", bl.Radius(dist))
	fmt.Printf("  balanced k-ary:            %.4f\n", kary.Radius(dist))
	fmt.Println("(the greedy is strong at this size but costs O(n^2) and has no")
	fmt.Println(" delay guarantee; Polar_Grid is near-linear with a proven bound,")
	fmt.Println(" which is what matters at CDN scale — see EXPERIMENTS.md)")

	// Simulate the stream: 10 segments, three relay servers crash at
	// mid-session.
	sim, err := omtree.NewSim(res.Tree, omtree.SimConfig{Latency: dist, ProcDelay: 0.002})
	if err != nil {
		log.Fatal(err)
	}
	var crashed []int
	for i := 1; i < res.Tree.N() && len(crashed) < 3; i++ {
		if res.Tree.OutDegree(i) > 0 {
			crashed = append(crashed, i)
		}
	}
	interval := 2 * res.Radius
	failTime := 5 * interval
	var failures []omtree.Failure
	for _, c := range crashed {
		failures = append(failures, omtree.Failure{Node: c, Time: failTime})
	}
	session := sim.Session(10, interval, failures)
	blacked := 0
	for i, lost := range session.Lost {
		if lost > 0 && i != 0 {
			blacked++
		}
	}
	fmt.Printf("\nmid-session crash of %d relay servers blacks out %d servers\n",
		len(crashed), blacked)

	// Repair and verify the stream recovers.
	rep, err := omtree.Repair(res.Tree, crashed, uplink, dist, omtree.RepairBestDelay)
	if err != nil {
		log.Fatal(err)
	}
	repairedDist := func(a, b int) float64 { return dist(rep.OldID[a], rep.OldID[b]) }
	fmt.Printf("repair reattached %d orphan subtrees; radius %.4f -> %.4f\n",
		rep.Reattached, res.Radius, rep.Tree.Radius(repairedDist))
	repSim, err := omtree.NewSim(rep.Tree, omtree.SimConfig{Latency: repairedDist, ProcDelay: 0.002})
	if err != nil {
		log.Fatal(err)
	}
	d := repSim.Multicast()
	for _, got := range d.Received {
		if !got {
			log.Fatal("a surviving edge server still misses the stream")
		}
	}
	fmt.Println("post-repair: every surviving edge server receives the stream")
}
