#!/bin/sh
# scripts/bench.sh — run the perf-trajectory benchmark set and write a
# machine-readable snapshot.
#
# Usage:
#   scripts/bench.sh [OUTPUT.json]       # default: BENCH_<yyyymmdd>.json
#
# Environment overrides:
#   BENCH_PKGS     packages to benchmark (default: the protocol hot path —
#                  including the DriftRepair local-vs-full pair at 10k and
#                  100k nodes — the trace recorder, the grid k-search, the
#                  multi-group substrate, and the flight recorder: the
#                  surfaces the tracing layer, the analytic rebuild path,
#                  the kinetic repair loop, the shared-substrate overhead,
#                  and the per-round sampling cost must not slow down)
#   BENCH_PATTERN  -bench regexp (default: all benchmarks in BENCH_PKGS)
#   BENCH_COUNT    -count repetitions (default 1; use 5+ for a decision)
#
# The snapshot is a JSON array of {name, ns_per_op, allocs_per_op, n}, one
# entry per benchmark run. Compare a fresh snapshot against the committed
# BENCH_baseline.json to spot regressions; see EXPERIMENTS.md for the
# regression workflow and the <2% budget on the protocol benchmarks.
set -eu

cd "$(dirname "$0")/.."

PKGS=${BENCH_PKGS:-"./internal/protocol ./internal/obs/trace ./internal/obs/flight ./internal/grid ./internal/multigroup"}
PATTERN=${BENCH_PATTERN:-.}
COUNT=${BENCH_COUNT:-1}
OUT=${1:-BENCH_$(date +%Y%m%d).json}

# shellcheck disable=SC2086  # PKGS is a deliberate word list
go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" $PKGS \
    | tee /dev/stderr \
    | awk '
        BEGIN { print "[" }
        /^Benchmark/ {
            name = $1
            sub(/^Benchmark/, "", name)
            sub(/-[0-9]+$/, "", name)
            n = $2; ns = $3; allocs = 0
            for (i = 4; i <= NF; i++) if ($i == "allocs/op") allocs = $(i - 1)
            if (count++) printf ",\n"
            printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"n\": %s}", \
                name, ns, allocs, n
        }
        END { if (count) printf "\n"; print "]" }
    ' > "$OUT"

echo "bench: wrote $OUT" >&2
