#!/bin/sh
# scripts/bench_compare.sh — diff a benchmark snapshot against the
# committed baseline and fail on regressions.
#
# Usage:
#   scripts/bench_compare.sh [SNAPSHOT.json] [BASELINE.json]
#     SNAPSHOT defaults to a fresh run via scripts/bench.sh (written to a
#     temp file); BASELINE defaults to BENCH_baseline.json.
#
# Environment overrides:
#   BENCH_TOLERANCE  allowed ns/op regression as a fraction (default 0.02,
#                    i.e. the 2% budget from EXPERIMENTS.md)
#
# Benchmarks are matched by name. A benchmark present only in the snapshot
# gets a "new" verdict row (it has no baseline yet — add it to
# BENCH_baseline.json to start tracking it); one present only in the
# baseline is skipped with a warning on stderr (retired benchmarks no
# longer matter). Neither fails the comparison. Exit status is non-zero
# when any shared benchmark's ns/op exceeds baseline * (1 + tolerance).
#
# ns/op on a shared CI box is noisy; re-run with BENCH_COUNT=5 (see
# scripts/bench.sh) before treating a small overshoot as real.
set -eu

cd "$(dirname "$0")/.."

TOL=${BENCH_TOLERANCE:-0.02}
SNAP=${1:-}
BASE=${2:-BENCH_baseline.json}

if [ ! -f "$BASE" ]; then
    echo "bench_compare: baseline $BASE not found" >&2
    exit 2
fi

cleanup=""
if [ -z "$SNAP" ]; then
    SNAP=$(mktemp "${TMPDIR:-/tmp}/bench_snap.XXXXXX")
    cleanup=$SNAP
    trap 'rm -f "$cleanup"' EXIT INT TERM
    scripts/bench.sh "$SNAP" >&2
fi
if [ ! -f "$SNAP" ]; then
    echo "bench_compare: snapshot $SNAP not found" >&2
    exit 2
fi

# The snapshots are one {...} object per line (scripts/bench.sh writes
# them that way), so awk can pull name and ns_per_op without jq.
awk -v tol="$TOL" -v basefile="$BASE" -v snapfile="$SNAP" '
    function parse(line,   name, ns) {
        if (match(line, /"name": *"[^"]*"/) == 0) return 0
        name = substr(line, RSTART, RLENGTH)
        sub(/^"name": *"/, "", name); sub(/"$/, "", name)
        if (match(line, /"ns_per_op": *[0-9.eE+-]+/) == 0) return 0
        ns = substr(line, RSTART, RLENGTH)
        sub(/^"ns_per_op": */, "", ns)
        pname = name; pns = ns + 0
        return 1
    }
    BEGIN {
        while ((getline line < basefile) > 0)
            if (parse(line)) base[pname] = pns
        close(basefile)
        while ((getline line < snapfile) > 0)
            if (parse(line)) snap[pname] = pns
        close(snapfile)
        if (length(base) == 0) { print "bench_compare: no benchmarks in " basefile > "/dev/stderr"; exit 2 }
        if (length(snap) == 0) { print "bench_compare: no benchmarks in " snapfile > "/dev/stderr"; exit 2 }
        fail = 0; base_only = 0; snap_only = 0
        for (name in base) {
            if (!(name in snap)) {
                printf "bench_compare: warning: skipping %s (baseline only; retired?)\n", \
                    name > "/dev/stderr"
                base_only++
                continue
            }
            delta = (snap[name] - base[name]) / base[name]
            verdict = "ok"
            if (delta > tol) { verdict = "REGRESSION"; fail = 1 }
            printf "  %-16s %12.2f -> %12.2f ns/op  %+7.2f%%  %s\n", \
                name, base[name], snap[name], 100 * delta, verdict
        }
        for (name in snap) {
            if (!(name in base)) {
                printf "  %-16s %12s -> %12.2f ns/op  %7s  new\n", \
                    name, "-", snap[name], "-"
                snap_only++
            }
        }
        # Zero-overhead gate: a disabled flight recorder must cost the same
        # as no recorder at all (its fast path is one atomic load). The
        # bound is absolute ns, not a ratio — both sides sit around 2 ns,
        # where any percentage is pure timer noise.
        if (("FlightSample/disabled" in snap) && ("FlightSample/none" in snap)) {
            over = snap["FlightSample/disabled"] - snap["FlightSample/none"]
            if (over > 5) {
                printf "bench_compare: disabled flight recorder costs %.2f ns/op over the nil-recorder path (budget 5 ns)\n", \
                    over > "/dev/stderr"
                fail = 1
            } else {
                printf "  FlightSample disabled-vs-none overhead %+.2f ns/op (budget 5 ns)  ok\n", over
            }
        }
        if (snap_only > 0)
            printf "bench_compare: %d new benchmark(s) have no baseline yet; add them to BENCH_baseline.json\n", \
                snap_only > "/dev/stderr"
        if (base_only > 0)
            printf "bench_compare: skipped %d baseline-only benchmark(s)\n", \
                base_only > "/dev/stderr"
        if (fail) {
            printf "bench_compare: ns/op regression beyond %.0f%% tolerance\n", 100 * tol > "/dev/stderr"
            exit 1
        }
        print "bench_compare: within tolerance"
    }
'
