package omtree_test

// Benchmarks regenerating the paper's evaluation artifacts. One benchmark
// per table/figure; each reports the figure's quantities as custom metrics
// (delay, bound, core delay, rings) on top of the usual ns/op, so a single
//
//	go test -bench=. -benchmem
//
// run reproduces the shape of Table I and Figures 4-8. Default sizes stop
// at 100k to keep the run in minutes; set OMT_BENCH_FULL=1 to extend to the
// paper's 1M and 5M points.

import (
	"fmt"
	"os"
	"testing"

	"omtree"
	"omtree/internal/geom"
	"omtree/internal/grid"
)

var benchSizes = func() []int {
	sizes := []int{100, 1000, 10000, 100000}
	if os.Getenv("OMT_BENCH_FULL") != "" {
		sizes = append(sizes, 1000000, 5000000)
	}
	return sizes
}()

// BenchmarkTable1 regenerates Table I: Polar_Grid builds on the uniform
// unit disk at out-degrees 6 and 2 across problem sizes. ns/op is the
// paper's "CPU Sec" column; the reported metrics are the other columns.
func BenchmarkTable1(b *testing.B) {
	for _, n := range benchSizes {
		for _, deg := range []int{6, 2} {
			b.Run(fmt.Sprintf("n=%d/deg=%d", n, deg), func(b *testing.B) {
				recv := omtree.NewRand(uint64(n)).UniformDiskN(n, 1)
				var last *omtree.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := omtree.Build(omtree.Point2{}, recv, omtree.WithMaxOutDegree(deg))
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.StopTimer()
				b.ReportMetric(float64(last.K), "rings")
				b.ReportMetric(last.CoreDelay, "core")
				b.ReportMetric(last.Radius, "delay")
				b.ReportMetric(last.Bound, "bound")
			})
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: maximum delay vs the upper bound (7)
// and the core delay for the out-degree-6 variant.
func BenchmarkFig4(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			recv := omtree.NewRand(uint64(n)+4).UniformDiskN(n, 1)
			var last *omtree.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := omtree.Build(omtree.Point2{}, recv)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.StopTimer()
			b.ReportMetric(last.Radius, "delay")
			b.ReportMetric(last.Bound, "bound")
			b.ReportMetric(last.CoreDelay, "core")
		})
	}
}

// BenchmarkFig5 regenerates Figure 5: the degree-2 vs degree-6 delay
// comparison; the reported metric is each variant's delay plus the
// overhead ratio the paper highlights (~2x).
func BenchmarkFig5(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			recv := omtree.NewRand(uint64(n)+5).UniformDiskN(n, 1)
			var d6, d2 float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res6, err := omtree.Build(omtree.Point2{}, recv)
				if err != nil {
					b.Fatal(err)
				}
				res2, err := omtree.Build(omtree.Point2{}, recv, omtree.WithMaxOutDegree(2))
				if err != nil {
					b.Fatal(err)
				}
				d6, d2 = res6.Radius, res2.Radius
			}
			b.StopTimer()
			b.ReportMetric(d6, "delay6")
			b.ReportMetric(d2, "delay2")
			if d6 > 1 {
				b.ReportMetric((d2-1)/(d6-1), "overhead-ratio")
			}
		})
	}
}

// BenchmarkFig6 regenerates Figure 6: the ring count k chosen by the grid
// versus n (the metric; ns/op measures the k-search itself).
func BenchmarkFig6(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			recv := omtree.NewRand(uint64(n)+6).UniformDiskN(n, 1)
			polars := make([]geom.Polar, len(recv))
			for i, p := range recv {
				polars[i] = p.ToPolar()
			}
			k := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k = grid.MaxFeasibleK(polars, 1, grid.DefaultKMax(n))
			}
			b.StopTimer()
			b.ReportMetric(float64(k), "rings")
		})
	}
}

// BenchmarkFig7 regenerates Figure 7: end-to-end build time versus n
// (ns/op is the figure; near-linear growth is the claim).
func BenchmarkFig7(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			recv := omtree.NewRand(uint64(n)+7).UniformDiskN(n, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := omtree.Build(omtree.Point2{}, recv); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(n), "nodes")
		})
	}
}

// BenchmarkFig8 regenerates Figure 8: the 3-D unit ball at out-degrees 10
// and 2, delays converging to 1 but above the 2-D values at equal n.
func BenchmarkFig8(b *testing.B) {
	for _, n := range benchSizes {
		for _, deg := range []int{10, 2} {
			b.Run(fmt.Sprintf("n=%d/deg=%d", n, deg), func(b *testing.B) {
				recv := omtree.NewRand(uint64(n)+8).UniformBall3N(n, 1)
				var last *omtree.Result
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := omtree.Build3D(omtree.Point3{}, recv, omtree.WithMaxOutDegree(deg))
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.StopTimer()
				b.ReportMetric(float64(last.K), "rings")
				b.ReportMetric(last.Radius, "delay")
			})
		}
	}
}

// BenchmarkBuildParallel measures the parallel build pipeline across worker
// counts (ISSUE: n in {10k, 100k, 1M} x workers {1, 4, 8}; 1M rides behind
// OMT_BENCH_FULL with the other large sizes). Speedup is bounded by the
// host's core count — on a single-CPU container all worker counts tie, which
// is itself the determinism claim in wall-clock form.
func BenchmarkBuildParallel(b *testing.B) {
	sizes := []int{10000, 100000}
	if os.Getenv("OMT_BENCH_FULL") != "" {
		sizes = append(sizes, 1000000)
	}
	for _, n := range sizes {
		recv := omtree.NewRand(uint64(n)+10).UniformDiskN(n, 1)
		for _, workers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := omtree.Build(omtree.Point2{}, recv,
						omtree.WithParallelism(workers)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBisection measures the stand-alone constant-factor algorithm
// (§II) — the subroutine's own cost and certified bound.
func BenchmarkBisection(b *testing.B) {
	for _, n := range benchSizes {
		for _, deg := range []int{4, 2} {
			b.Run(fmt.Sprintf("n=%d/deg=%d", n, deg), func(b *testing.B) {
				pts := omtree.NewRand(uint64(n)+9).UniformDiskN(n, 1)
				var bound float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, rep, err := omtree.BuildBisection(pts, 0, deg)
					if err != nil {
						b.Fatal(err)
					}
					bound = rep.PathBound
				}
				b.StopTimer()
				b.ReportMetric(bound, "path-bound")
			})
		}
	}
}

// BenchmarkBaselines compares construction cost of Polar_Grid against the
// O(n^2) heuristics at a size where both run comfortably — the scalability
// argument of the paper in bench form.
func BenchmarkBaselines(b *testing.B) {
	const n = 2000
	recv := omtree.NewRand(77).UniformDiskN(n, 1)
	pts := append([]omtree.Point2{{}}, recv...)
	dist := func(i, j int) float64 { return pts[i].Dist(pts[j]) }

	b.Run("polargrid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := omtree.Build(omtree.Point2{}, recv); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := omtree.GreedyClosest(len(pts), 0, dist, 6); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bandwidth-latency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := omtree.BandwidthLatency(len(pts), 0, dist, 6, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("balanced-kary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := omtree.BalancedKary(len(pts), 0, dist, 6); err != nil {
				b.Fatal(err)
			}
		}
	})
}
