package omtree_test

import (
	"fmt"
	"log"

	"omtree"
)

// Example builds the out-degree-6 Polar_Grid tree over random receivers
// and prints the certified quantities.
func Example() {
	r := omtree.NewRand(7)
	receivers := r.UniformDiskN(10000, 1)
	source := omtree.Point2{}

	res, err := omtree.Build(source, receivers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nodes: %d\n", res.Tree.N())
	fmt.Printf("variant: %v (max out-degree %d)\n", res.Variant, res.MaxOutDegree)
	fmt.Printf("radius within bound: %v\n", res.Radius <= res.Bound)
	fmt.Printf("radius at least scale: %v\n", res.Radius >= res.Scale)
	// Output:
	// nodes: 10001
	// variant: natural (max out-degree 6)
	// radius within bound: true
	// radius at least scale: true
}

// ExampleBuild_binary selects the out-degree-2 variant for
// bandwidth-starved hosts.
func ExampleBuild_binary() {
	r := omtree.NewRand(8)
	receivers := r.UniformDiskN(5000, 1)

	res, err := omtree.Build(omtree.Point2{}, receivers, omtree.WithMaxOutDegree(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max out-degree used: %d\n", res.Tree.MaxOutDegree())
	fmt.Printf("variant: %v\n", res.Variant)
	// Output:
	// max out-degree used: 2
	// variant: binary
}

// ExampleBuildBisection runs the stand-alone constant-factor algorithm and
// checks its certificate.
func ExampleBuildBisection() {
	r := omtree.NewRand(9)
	pts := r.UniformDiskN(1000, 1)

	tree, report, err := omtree.BuildBisection(pts, 0, 4)
	if err != nil {
		log.Fatal(err)
	}
	dist := func(i, j int) float64 { return pts[i].Dist(pts[j]) }
	fmt.Printf("radius within path bound: %v\n", tree.Radius(dist) <= report.PathBound)
	// Output:
	// radius within path bound: true
}

// ExampleNewSim cross-checks the analytic radius with the discrete-event
// simulator.
func ExampleNewSim() {
	r := omtree.NewRand(10)
	receivers := r.UniformDiskN(2000, 1)
	source := omtree.Point2{}
	res, err := omtree.Build(source, receivers)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := omtree.NewSim(res.Tree, omtree.SimConfig{Latency: omtree.Dist(source, receivers)})
	if err != nil {
		log.Fatal(err)
	}
	d := sim.Multicast()
	fmt.Printf("everyone received: %v\n", d.Forwards == res.Tree.N()-1)
	fmt.Printf("simulated equals analytic: %v\n",
		d.MaxDelay-res.Radius < 1e-9 && res.Radius-d.MaxDelay < 1e-9)
	// Output:
	// everyone received: true
	// simulated equals analytic: true
}

// ExampleNewOverlay runs a tiny decentralized session.
func ExampleNewOverlay() {
	overlay, err := omtree.NewOverlay(omtree.OverlayConfig{
		Source: omtree.Point2{}, Scale: 1, K: 3, MaxOutDegree: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	r := omtree.NewRand(11)
	for i := 0; i < 100; i++ {
		if _, _, err := overlay.Join(r.UniformDisk(1)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("members: %d\n", overlay.N()-1)
	tree, _, _, err := overlay.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("valid degree-6 tree: %v\n", tree.Validate(6) == nil)
	// Output:
	// members: 100
	// valid degree-6 tree: true
}
