// Package omtree builds overlay multicast trees of minimal delay: spanning
// trees rooted at a source that minimize the maximum sender-to-receiver
// delay subject to per-node out-degree (bandwidth) constraints, after
// Riabov, Liu & Zhang, "Overlay Multicast Trees of Minimal Delay" (ICDCS
// 2004).
//
// The primary entry points are Build (2-D), Build3D and BuildND, which run
// Algorithm Polar_Grid — asymptotically optimal for points filling a convex
// region around the source — and BuildBisection, the stand-alone
// constant-factor approximation (factor 5 at out-degree 4, 9 at out-degree
// 2). Node 0 of every resulting tree is the source; node i >= 1 is
// receivers[i-1]. Builds are deterministic; WithParallelism fans the
// construction over a worker pool without changing the resulting tree.
//
// Supporting toolkits are re-exported here: baselines (Star, GreedyClosest,
// BandwidthLatency, ...), the discrete-event overlay simulator (NewSim,
// Repair), the GNP-style network-coordinates substrate (Embed,
// TransitStub), the multi-group shared substrate (NewSubstrate,
// Substrate.NewGroup), and deterministic geometric samplers (NewRand).
package omtree

import (
	"io"

	"omtree/internal/baseline"
	"omtree/internal/bisect"
	"omtree/internal/coords"
	"omtree/internal/core"
	"omtree/internal/faultplane"
	"omtree/internal/geom"
	"omtree/internal/multigroup"
	"omtree/internal/netsim"
	"omtree/internal/obs"
	"omtree/internal/obs/flight"
	"omtree/internal/obs/trace"
	"omtree/internal/protocol"
	"omtree/internal/rng"
	"omtree/internal/snapshot"
	"omtree/internal/tree"
	"omtree/internal/viz"
)

// Geometric and structural types.
type (
	// Point2 is a point of the plane.
	Point2 = geom.Point2
	// Point3 is a point of 3-space.
	Point3 = geom.Point3
	// Vec is a point of d-dimensional space (d = len).
	Vec = geom.Vec
	// Tree is a rooted degree-constrained multicast tree.
	Tree = tree.Tree
	// DistFunc supplies edge lengths to tree metrics.
	DistFunc = tree.DistFunc
	// Result carries a Polar_Grid build outcome (tree + Table I metrics).
	Result = core.Result
	// Option configures a Polar_Grid build.
	Option = core.Option
	// Variant names the Polar_Grid wiring (natural or binary).
	Variant = core.Variant
	// BisectReport certifies a stand-alone 2-D Bisection build.
	BisectReport = bisect.Report
	// Rand is the deterministic generator behind all samplers.
	Rand = rng.Rand
	// Cluster describes one Gaussian component of the clustered and
	// mixed-density samplers.
	Cluster = rng.Cluster
)

// Polar_Grid variants.
const (
	VariantNatural = core.VariantNatural
	VariantHybrid  = core.VariantHybrid
	VariantBinary  = core.VariantBinary
)

// Build options.
var (
	// WithMaxOutDegree caps every node's out-degree; >= the natural degree
	// (6 / 10 / 2^d+2) selects the natural variant, [4, natural) the hybrid
	// variant (out-degree 4), and {2, 3} the binary variant.
	WithMaxOutDegree = core.WithMaxOutDegree
	// WithForceK pins the grid ring count (ablation hook).
	WithForceK = core.WithForceK
	// WithKMax caps the automatic ring search.
	WithKMax = core.WithKMax
	// WithParallelism fans the build over n workers (1 = serial; <= 0 =
	// GOMAXPROCS for large inputs). Parallel and serial builds of the same
	// input produce identical trees.
	WithParallelism = core.WithParallelism
	// WithObserver attaches a metrics registry to the build; phase timings
	// land under "build/..." without changing the resulting tree.
	WithObserver = core.WithObserver
	// WithTrace attaches an event recorder to the build; phase begin/end
	// events and per-cell wiring instants land on one trace id without
	// changing the resulting tree.
	WithTrace = core.WithTrace
	// WithFlight attaches a flight recorder to the build; the completed
	// build lands one "build"-cause sample without changing the resulting
	// tree.
	WithFlight = core.WithFlight
)

// Observability types (see internal/obs): a dependency-free registry of
// counters, gauges, histograms, and hierarchical timing spans with stable
// text/JSON snapshots. An Observer threads through builds (WithObserver),
// sessions (Overlay.Observe), simulations (SimConfig.Obs), and fault planes
// (FaultPlane.Observe); a nil Observer is accepted everywhere and free.
type (
	// Observer collects metrics across the toolkit's layers.
	Observer = obs.Registry
	// MetricsSnapshot is a frozen, renderable view of an Observer.
	MetricsSnapshot = obs.Snapshot
	// OverlaySessionStats aggregates a session's control traffic.
	OverlaySessionStats = protocol.SessionStats
)

// NewObserver returns an enabled metrics registry.
func NewObserver() *Observer { return obs.New() }

// Causal-event tracing (see internal/obs/trace): a bounded ring of
// timeline events with trace/span ids minted per protocol operation,
// exported as a deterministic text timeline or Chrome trace-event JSON
// (loadable in Perfetto). A TraceRecorder threads through builds
// (WithTrace), sessions (Overlay.Trace), simulations (SimConfig.Trace),
// and fault planes (via the session's transport); nil is accepted
// everywhere and free.
type (
	// TraceRecorder is the bounded causal-event ring.
	TraceRecorder = trace.Recorder
	// TraceEvent is one recorded timeline entry.
	TraceEvent = trace.Event
)

// NewTraceRecorder returns an enabled event recorder with the given ring
// capacity (<= 0 selects the 64k-event default).
func NewTraceRecorder(capacity int) *TraceRecorder { return trace.New(capacity) }

// Flight recording (see internal/obs/flight): a bounded in-memory ring of
// registry samples driven by the protocol's virtual round clock, with
// per-series delta/rate computation, a declarative SLO watchdog, a
// deterministic text health report, and OpenMetrics/JSONL export. A
// FlightRecorder threads through builds (WithFlight), sessions
// (Overlay.SetFlight), group sets (OverlayGroupSet.SetFlight — one sample
// per sweep), and the drift sweep; nil is accepted everywhere and free.
type (
	// FlightRecorder samples an Observer into a bounded ring and watches
	// the samples against SLO rules.
	FlightRecorder = flight.Recorder
	// FlightConfig parameterizes a FlightRecorder: sample interval in
	// virtual rounds, ring capacity, SLO rules, and an optional trace
	// recorder receiving alert transitions.
	FlightConfig = flight.Config
	// FlightSample is one frozen point of the health trajectory.
	FlightSample = flight.Sample
	// SLORule is one declarative health rule, e.g.
	// `cert: protocol/certificate_ratio > 1.15 for 3`.
	SLORule = flight.SLORule
	// SLOAlert is one fired rule occurrence.
	SLOAlert = flight.Alert
)

// NewFlightRecorder returns an enabled flight recorder sampling reg (which
// must be non-nil; a nil registry yields a nil, inert recorder).
func NewFlightRecorder(reg *Observer, cfg FlightConfig) *FlightRecorder {
	return flight.New(reg, cfg)
}

// SLO rule-grammar helpers and the OpenMetrics exposition of a snapshot.
var (
	// ParseSLORule parses one rule:
	// `[name:] series|rate(series)|delta(series) OP number[%] [for N]`.
	ParseSLORule = flight.ParseSLORule
	// ParseSLORules parses a ';'-joined rule list (the CLI -slo format).
	ParseSLORules = flight.ParseSLORules
	// WriteOpenMetrics renders a metrics snapshot as Prometheus/OpenMetrics
	// exposition text.
	WriteOpenMetrics = flight.WriteOpenMetrics
)

// RegisterSessionMetrics publishes a session's stats under "protocol/..."
// in the registry (counter funcs; the struct stays the source of truth).
var RegisterSessionMetrics = protocol.RegisterSessionMetrics

// Build runs Algorithm Polar_Grid over planar receivers (default: the
// natural out-degree-6 variant).
func Build(source Point2, receivers []Point2, opts ...Option) (*Result, error) {
	return core.Build2(source, receivers, opts...)
}

// Build3D runs Algorithm Polar_Grid in three dimensions (default:
// out-degree 10).
func Build3D(source Point3, receivers []Point3, opts ...Option) (*Result, error) {
	return core.Build3(source, receivers, opts...)
}

// BuildND runs Algorithm Polar_Grid in dimension len(source) >= 2
// (default: out-degree 2^d + 2).
func BuildND(source Vec, receivers []Vec, opts ...Option) (*Result, error) {
	return core.BuildD(source, receivers, opts...)
}

// BuildState is a retained planar Polar_Grid build (see internal/core):
// Add/Remove record membership churn under caller-chosen slot ids >= 1,
// and Rebuild rewires only the grid cells the churn touched — falling back
// to a full rebuild when the verified ring count changes — while always
// returning a tree byte-identical to a from-scratch Build over the same
// membership. Rebuild's boolean reports whether the full path ran.
type BuildState = core.BuildState

// NewBuildState returns an empty retained build rooted at source, ready
// for Add/Remove/Rebuild cycles.
var NewBuildState = core.NewBuildState

// Multi-group types (see internal/multigroup): many multicast groups over
// one shared host population. A Substrate holds the coordinates and every
// index derived only from them, built once; each GroupTree holds one
// group's private membership and tree state. A group's Build returns
// exactly what Build/Build3D/BuildND would for the same source and the
// members' coordinates in ascending host order.
type (
	// Substrate is the shared, read-only half of a multi-group deployment.
	Substrate = multigroup.Substrate
	// SubstrateOption configures a Substrate.
	SubstrateOption = multigroup.SubstrateOption
	// GroupTree is one group's private tree state on a Substrate.
	GroupTree = multigroup.GroupTree
	// GroupConfig describes one group: source, degree bound, grid knobs.
	GroupConfig = multigroup.GroupConfig
)

// Multi-group constructors.
var (
	// NewSubstrate builds the shared substrate over a 2-D host population.
	NewSubstrate = multigroup.NewSubstrate
	// NewSubstrate3 is NewSubstrate for 3-D hosts.
	NewSubstrate3 = multigroup.NewSubstrate3
	// NewSubstrateND is NewSubstrate for one coordinate slice per axis.
	NewSubstrateND = multigroup.NewSubstrateND
	// WithSubstrateObserver routes per-group labeled metrics to a registry
	// (bounded by the registry's label cap).
	WithSubstrateObserver = multigroup.WithObserver
)

// OverlayGroupSet runs several live sessions — one Overlay per group —
// over one shared transport and failure-detector tuning; MaintenanceAll
// sweeps every group while advancing the shared round clock exactly once.
type OverlayGroupSet = protocol.GroupSet

// NewOverlayGroupSet creates an empty group set. A nil transport makes
// every group reliable; the registry may be nil.
var NewOverlayGroupSet = protocol.NewGroupSet

// BuildBisection runs the stand-alone constant-factor Bisection over an
// arbitrary planar point set. Unlike Build, the source indexes into points
// and node ids equal point indices.
func BuildBisection(points []Point2, source, maxOutDegree int) (*Tree, BisectReport, error) {
	return bisect.BuildTree(points, source, maxOutDegree)
}

// SquareBisectReport certifies a quadtree Bisection build.
type SquareBisectReport = bisect.SquareReport

// BuildBisectionSquare runs the quadtree variant of the Bisection (the
// square version §II alludes to): same constant-factor flavor, axis-aligned
// splitting.
func BuildBisectionSquare(points []Point2, source, maxOutDegree int) (*Tree, SquareBisectReport, error) {
	return bisect.BuildTreeSquare(points, source, maxOutDegree)
}

// DiameterResult is the outcome of a minimum-diameter build.
type DiameterResult = core.DiameterResult

// BuildMinDiameter applies Polar_Grid to the minimum-diameter (MDDL)
// problem (§VI): no designated source; the tree is rooted at the host
// nearest the point set's center and the largest host-to-host path is
// reported.
func BuildMinDiameter(points []Point2, opts ...Option) (*DiameterResult, error) {
	return core.BuildMinDiameter2(points, opts...)
}

// Dist returns the DistFunc matching Build's node numbering: node 0 is the
// source, node i >= 1 is receivers[i-1].
func Dist(source Point2, receivers []Point2) DistFunc {
	return func(i, j int) float64 {
		pi, pj := source, source
		if i > 0 {
			pi = receivers[i-1]
		}
		if j > 0 {
			pj = receivers[j-1]
		}
		return pi.Dist(pj)
	}
}

// Dist3D is Dist for 3-D builds.
func Dist3D(source Point3, receivers []Point3) DistFunc {
	return func(i, j int) float64 {
		pi, pj := source, source
		if i > 0 {
			pi = receivers[i-1]
		}
		if j > 0 {
			pj = receivers[j-1]
		}
		return pi.Dist(pj)
	}
}

// DistND is Dist for d-dimensional builds.
func DistND(source Vec, receivers []Vec) DistFunc {
	return func(i, j int) float64 {
		pi, pj := source, source
		if i > 0 {
			pi = receivers[i-1]
		}
		if j > 0 {
			pj = receivers[j-1]
		}
		return pi.Dist(pj)
	}
}

// NewRand returns a deterministic generator with geometric samplers
// (UniformDiskN, UniformBall3N, ClusteredDiskN, ...).
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Baseline tree constructions (see internal/baseline for semantics).
var (
	// Star attaches everything directly to the source (unconstrained
	// lower-bound witness).
	Star = baseline.Star
	// GreedyClosest is the compact-tree greedy.
	GreedyClosest = baseline.GreedyClosest
	// BandwidthLatency is the heuristic of Chu et al.
	BandwidthLatency = baseline.BandwidthLatency
	// BalancedKary packs distance-sorted receivers into a balanced k-ary
	// tree.
	BalancedKary = baseline.BalancedKary
	// RandomTree attaches receivers randomly subject to degree.
	RandomTree = baseline.Random
	// GreedyKNN is the k-d-tree-accelerated greedy (near-linear; pts[0]
	// is the source and node ids equal point indices).
	GreedyKNN = baseline.GreedyKNN
	// ExactOptimal exhaustively finds the optimum for n <= MaxExactNodes.
	ExactOptimal = baseline.Exact
)

// MaxExactNodes bounds ExactOptimal's exhaustive search.
const MaxExactNodes = baseline.MaxExactNodes

// Simulation types (see internal/netsim).
type (
	// Sim is the discrete-event overlay multicast simulator.
	Sim = netsim.Sim
	// SimConfig parameterizes a simulation.
	SimConfig = netsim.Config
	// Failure crashes a node at a point in time.
	Failure = netsim.Failure
	// Delivery reports one packet's propagation.
	Delivery = netsim.Delivery
	// RepairResult describes a repaired overlay.
	RepairResult = netsim.RepairResult
	// RepairStrategy selects orphan reattachment policy.
	RepairStrategy = netsim.RepairStrategy
)

// Repair strategies.
const (
	RepairGrandparent = netsim.RepairGrandparent
	RepairBestDelay   = netsim.RepairBestDelay
)

// NewSim builds a simulator over a tree.
func NewSim(t *Tree, cfg SimConfig) (*Sim, error) { return netsim.New(t, cfg) }

// Repair removes failed nodes and reattaches orphaned subtrees.
var Repair = netsim.Repair

// Network-coordinate types (see internal/coords).
type (
	// DelayMatrix is a symmetric host-to-host delay matrix.
	DelayMatrix = coords.Matrix
	// EmbedConfig parameterizes the GNP-style embedding.
	EmbedConfig = coords.EmbedConfig
	// Embedding places hosts into Euclidean space.
	Embedding = coords.Embedding
	// TransitStubConfig parameterizes the synthetic Internet topology.
	TransitStubConfig = coords.TransitStubConfig
)

// Decentralized-session types (see internal/protocol): the live overlay
// with join/leave/maintenance that the paper names as future work.
type (
	// Overlay is a live decentralized multicast session.
	Overlay = protocol.Overlay
	// OverlayConfig publishes the session's grid parameters.
	OverlayConfig = protocol.Config
	// OpStats counts one operation's control messages.
	OpStats = protocol.OpStats
	// OptimizeStats reports one maintenance round.
	OptimizeStats = protocol.OptimizeStats
	// OverlayTransport delivers (or drops, delays, duplicates) control
	// messages between overlay nodes.
	OverlayTransport = protocol.Transport
	// RetryPolicy bounds per-message retransmission.
	RetryPolicy = protocol.RetryPolicy
	// OverlayFaultConfig tunes retries and the failure detector.
	OverlayFaultConfig = protocol.FaultConfig
	// MaintenanceStats reports one heartbeat/repair round.
	MaintenanceStats = protocol.MaintenanceStats
	// OverlayAdmission is the token-bucket join admission control.
	OverlayAdmission = protocol.Admission
	// RetryAfter is the load-shedding error carrying a retry hint.
	RetryAfter = protocol.RetryAfter
)

// Decentralized-session constructors.
var (
	// NewOverlay starts a session containing only the source.
	NewOverlay = protocol.New
	// SuggestOverlayK sizes the published grid for an expected membership.
	SuggestOverlayK = protocol.SuggestK
	// DefaultOverlayFaultConfig is the retry/detector tuning used when none
	// is supplied.
	DefaultOverlayFaultConfig = protocol.DefaultFaultConfig
	// ErrJoinQueued reports a join parked on the admission queue (it will
	// be admitted by an upcoming maintenance round).
	ErrJoinQueued = protocol.ErrJoinQueued
)

// Crash-safe state (see internal/snapshot, internal/protocol, and
// internal/faultplane): versioned, checksummed, deterministic snapshots of
// live sessions, atomic file rotation, restore into a byte-identical
// session, in-place rejoin of crashed members (Overlay.Restart), and a
// seeded kill-point harness for crash-recovery testing (DESIGN.md §2k).
type (
	// OverlaySnapshotConfig schedules automatic snapshots on the session's
	// maintenance-round clock (OverlayConfig.Snapshot).
	OverlaySnapshotConfig = protocol.SnapshotConfig
	// KillPlan is a deterministic crash schedule over named kill points.
	KillPlan = faultplane.KillPlan
	// KillEvent schedules one crash: die on the Hit-th crossing of Point.
	KillEvent = faultplane.KillEvent
	// KilledError reports that a kill plan fired.
	KilledError = faultplane.KilledError
)

// Crash-safe state constructors and helpers.
var (
	// RestoreOverlay reads one overlay snapshot and returns a session that
	// resumes exactly where WriteSnapshot left off.
	RestoreOverlay = protocol.Restore
	// RestoreOverlayBytes is RestoreOverlay for a blob already in memory
	// (received over a network, say), skipping the reader copy.
	RestoreOverlayBytes = protocol.RestoreBytes
	// RestoreOverlayFile is RestoreOverlay over a snapshot file.
	RestoreOverlayFile = protocol.RestoreFile
	// RestoreOverlayGroupSet restores a multi-session group-set snapshot
	// onto a fresh transport.
	RestoreOverlayGroupSet = protocol.RestoreGroupSet
	// NewKillPlan builds a crash schedule from explicit events.
	NewKillPlan = faultplane.NewKillPlan
	// SeededKillEvent derives one crash deterministically from a seed.
	SeededKillEvent = faultplane.SeededKillEvent
	// ErrSnapshotCorrupt reports a snapshot rejected by checksum, framing,
	// or semantic validation (errors.Is-matchable through every restore
	// path; torn writes land here, never in a panic).
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
)

// Fault-injection types (see internal/faultplane): a deterministic
// adversarial network for exercising the overlay protocol.
type (
	// FaultScenario configures seeded loss, duplication, delay, and crashes.
	FaultScenario = faultplane.Scenario
	// FaultPlane is the seeded transport implementing OverlayTransport.
	FaultPlane = faultplane.Plane
	// FaultOutcome is the fate of a single message attempt.
	FaultOutcome = faultplane.Outcome
	// PartitionEvent schedules a network split and its heal on the
	// plane's virtual round clock.
	PartitionEvent = faultplane.PartitionEvent
)

// NewFaultPlane validates a scenario and returns an active fault plane.
func NewFaultPlane(sc FaultScenario) (*FaultPlane, error) { return faultplane.New(sc) }

// LinkDrop returns a deterministic per-(edge, packet) drop predicate for
// SimConfig.Drop, matching the control plane's loss model on the data path.
var LinkDrop = faultplane.LinkDrop

// Kinetic-drift types (see internal/coords and internal/protocol): seeded
// coordinate drift, eq. 7 certificate monitoring, and policy-driven local
// repair (DESIGN.md §2h).
type (
	// DriftModel tracks true vs estimated coordinates under seeded drift.
	DriftModel = coords.DriftModel
	// DriftModelConfig parameterizes the drift motion: steady velocities,
	// route-change jumps, staleness inflation, and the bounding disk.
	DriftModelConfig = coords.DriftConfig
	// OverlayDriftConfig tunes the overlay's kinetic control loop: the
	// re-estimation cadence, degradation threshold, and repair policy.
	OverlayDriftConfig = protocol.DriftConfig
	// OverlayRepairPolicy selects the reaction to certificate degradation.
	OverlayRepairPolicy = protocol.RepairPolicy
	// TreeCertificate is the eq. 7 certificate a rebuild freezes: the
	// analytic radius bound and the radius the tree realized at build time.
	TreeCertificate = core.Certificate
)

// Kinetic repair policies: monitor only, certificate-triggered dirty-cell
// repair, or a full rebuild on every re-estimation sweep.
const (
	OverlayRepairNone  = protocol.RepairNone
	OverlayRepairLocal = protocol.RepairLocal
	OverlayRepairFull  = protocol.RepairFull
)

// Kinetic-drift constructors.
var (
	// NewDriftModel validates a drift config and returns an empty model at
	// epoch zero; attach it to a session with Overlay.SetDrift.
	NewDriftModel = coords.NewDriftModel
	// ParseOverlayRepairPolicy parses the CLI spelling of a repair policy
	// (none, local, full).
	ParseOverlayRepairPolicy = protocol.ParseRepairPolicy
)

// Coordinate-substrate constructors.
var (
	// NewDelayMatrix allocates a zero delay matrix.
	NewDelayMatrix = coords.NewMatrix
	// EuclideanMatrix synthesizes delays from planar positions plus noise.
	EuclideanMatrix = coords.EuclideanMatrix
	// TransitStub synthesizes an Internet-like delay matrix.
	TransitStub = coords.TransitStub
	// Embed runs the GNP-style two-phase embedding.
	Embed = coords.Embed
	// EmbeddingErrors returns per-pair relative embedding errors.
	EmbeddingErrors = coords.RelativeErrors
)

// VizOptions tunes SVG tree rendering.
type VizOptions = viz.Options

// RenderSVG draws a tree over its planar points as an SVG document
// (points[i] is node i's position; the root is highlighted).
func RenderSVG(w io.Writer, t *Tree, points []Point2, opts VizOptions) error {
	return viz.RenderSVG(w, t, points, opts)
}
