package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceRequiresFaults: -trace records the fault sweep, so selecting it
// without -faults is a usage error, reported before any file is created.
func TestTraceRequiresFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	err := run([]string{"-table1", "-sizes", "100", "-trials", "1", "-trace", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "-faults") {
		t.Fatalf("err = %v, want a -trace requires -faults error", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Error("rejected -trace still created the output file")
	}
}

// TestFaultSweepTrace: -faults with -trace writes a valid, non-empty
// Chrome trace-event JSON.
func TestFaultSweepTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var out bytes.Buffer
	if err := run([]string{"-faults", "-trials", "1", "-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("fault sweep trace has no events")
	}
}

// TestMetricsFailFast: an unwritable -metrics path errors before the sweep.
func TestMetricsFailFast(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing-dir", "m.json")
	var out bytes.Buffer
	err := run([]string{"-table1", "-sizes", "100", "-trials", "1", "-metrics", bad}, &out)
	if err == nil || !strings.Contains(err.Error(), "-metrics") {
		t.Fatalf("err = %v, want a -metrics open error", err)
	}
	if out.Len() != 0 {
		t.Error("sweep ran before the output check")
	}
}
