package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"omtree/internal/obs/flight"
)

// TestFlightRequiresDrift: -flight samples the drift sweep, so selecting it
// without -drift is a usage error, reported before any file is created.
func TestFlightRequiresDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	var out bytes.Buffer
	err := run([]string{"-table1", "-sizes", "100", "-trials", "1", "-flight", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "-drift") {
		t.Fatalf("err = %v, want a -flight requires -drift error", err)
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Error("rejected -flight still created the output file")
	}
}

// TestFlightTuningRequiresFlight: the interval and rule flags configure a
// recorder, so alone they are usage errors.
func TestFlightTuningRequiresFlight(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-drift", "-trials", "1", "-slo", "a > 1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-slo requires -flight") {
		t.Fatalf("err = %v, want a -slo requires -flight error", err)
	}
	err = run([]string{"-drift", "-trials", "1", "-flight-interval", "2"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-flight-interval requires -flight") {
		t.Fatalf("err = %v, want a -flight-interval requires -flight error", err)
	}
}

// TestDriftSweepFlight: -drift with -flight writes re-parseable JSONL
// samples carrying the protocol series and appends the health report, with
// the watched rule listed in the slo section.
func TestDriftSweepFlight(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.jsonl")
	var out bytes.Buffer
	args := []string{"-drift", "-trials", "1", "-seed", "7",
		"-flight", path, "-slo", "cert: protocol/certificate_ratio > 1.3"}
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flight health report") {
		t.Fatalf("stdout missing the health report:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "cert: protocol/certificate_ratio > 1.3") {
		t.Fatalf("report missing the watched rule:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("flight file is empty")
	}
	sawProtocol := false
	for _, line := range lines {
		var s flight.Sample
		if err := json.Unmarshal(line, &s); err != nil {
			t.Fatalf("line %q is not a sample: %v", line, err)
		}
		if s.Counters["protocol/maintenance_rounds"] > 0 {
			sawProtocol = true
		}
	}
	if !sawProtocol {
		t.Fatal("no sample carried the trials' protocol counters")
	}
}
