package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file instead when -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-run with -update if intended)\n got:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestGoldenOutput locks down the experiment harness text for the
// deterministic figures and sweeps. -table1 and -fig7 are excluded on
// purpose: their CPUSec columns measure wall time. All other output is a
// pure function of the seed.
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		// -workers 1 pins the per-size progress lines to size order; trial
		// results themselves are order-independent at any worker count.
		{"figures", []string{"-fig4", "-fig5", "-fig6", "-workers", "1",
			"-sizes", "100,300", "-trials", "2", "-seed", "7"}},
		{"churn_faults", []string{"-churn", "-faults", "-workers", "1",
			"-sizes", "100,300", "-trials", "2", "-seed", "7"}},
		{"partition", []string{"-faults", "-partition", "-workers", "1",
			"-sizes", "100", "-trials", "2", "-seed", "7"}},
		{"drift", []string{"-drift", "-workers", "1",
			"-sizes", "100", "-trials", "2", "-seed", "7"}},
		{"groups", []string{"-groups", "-workers", "1",
			"-trials", "2", "-seed", "7"}},
		{"recovery", []string{"-recovery", "-workers", "1",
			"-trials", "2", "-seed", "7"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, out.Bytes())
		})
	}
}
