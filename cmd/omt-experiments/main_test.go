package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("100, 500,1000")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{100, 500, 1000}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "abc", "10,-5", "10,,20"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestClampSizes(t *testing.T) {
	got := clampSizes([]int{100, 5000, 100000}, 5000)
	if len(got) != 2 || got[0] != 100 || got[1] != 5000 {
		t.Errorf("got %v", got)
	}
	// All too large: falls back to defaults.
	fallback := clampSizes([]int{1000000}, 5000)
	if len(fallback) == 0 {
		t.Error("empty fallback")
	}
	for _, s := range fallback {
		if s > 5000 {
			t.Errorf("fallback size %d exceeds cap", s)
		}
	}
}
