// Command omt-experiments regenerates the paper's evaluation: Table I and
// Figures 4–8, plus the baseline comparison.
//
//	omt-experiments -table1                 # Table I (disk, degrees 6 and 2)
//	omt-experiments -fig4 -fig5 -fig6 -fig7 # the 2-D figures
//	omt-experiments -fig8                   # 3-D unit ball, degrees 10 and 2
//	omt-experiments -baselines              # Polar_Grid vs prior heuristics
//	omt-experiments -drift                  # kinetic repair-policy frontier
//	omt-experiments -groups                 # multi-group shared-substrate sweep
//	omt-experiments -recovery               # crash×restart kill-point sweep
//	omt-experiments -all                    # everything
//
// By default the sweep runs sizes 100 .. 100,000 with 20 trials each, which
// finishes in minutes on a laptop. -paper selects the paper's exact setup
// (sizes up to 5,000,000, 200 trials) — budget considerable time and RAM.
// -sizes and -trials override either. -csv PATH additionally dumps the raw
// sweep as CSV.
//
// -metrics FILE writes a JSON metrics snapshot (aggregated build-phase
// spans across every trial) on exit and embeds it in the -json manifest;
// -trace FILE writes the faults sweep's causal event timeline as Chrome
// trace-event JSON (requires -faults; load it in Perfetto); -flight FILE
// attaches a flight recorder to the drift sweep (requires -drift): every
// trial's maintenance rounds land registry samples with per-series rates in
// a bounded ring, -slo RULES watches them against declarative health rules,
// the ring is written to FILE as JSONL and a deterministic health report is
// appended to stdout; -openmetrics FILE writes the final registry state as
// Prometheus/OpenMetrics exposition text; -pprof ADDR serves net/http/pprof
// for live profiling. All are off by default and do not change any result.
// Output files are created up front, so an unwritable path fails before the
// sweep starts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strconv"
	"strings"

	"omtree/internal/cliutil"
	"omtree/internal/experiment"
	"omtree/internal/obs"
	"omtree/internal/obs/flight"
	"omtree/internal/obs/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "omt-experiments:", err)
		os.Exit(1)
	}
}

var defaultSizes = []int{100, 500, 1000, 5000, 10000, 50000, 100000}

var paperSizes = []int{100, 500, 1000, 5000, 10000, 50000, 100000, 500000, 1000000, 5000000}

// startPprof serves the default mux (which net/http/pprof registers on) at
// addr; off when addr is empty.
func startPprof(addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof: %w", err)
	}
	go http.Serve(ln, nil)
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("omt-experiments", flag.ContinueOnError)
	table1 := fs.Bool("table1", false, "reproduce Table I")
	fig4 := fs.Bool("fig4", false, "reproduce Figure 4 (delay vs bounds, degree 6)")
	fig5 := fs.Bool("fig5", false, "reproduce Figure 5 (degree 2 vs degree 6)")
	fig6 := fs.Bool("fig6", false, "reproduce Figure 6 (rings vs n)")
	fig7 := fs.Bool("fig7", false, "reproduce Figure 7 (running time)")
	fig8 := fs.Bool("fig8", false, "reproduce Figure 8 (3-D unit ball)")
	baselines := fs.Bool("baselines", false, "compare against baseline heuristics")
	churn := fs.Bool("churn", false, "decentralized protocol vs centralized build")
	repairs := fs.Bool("repairs", false, "failure/repair robustness sweep")
	faults := fs.Bool("faults", false, "unreliable control plane: loss sweep with self-healing")
	partition := fs.Bool("partition", false, "partition tolerance: degraded islands, admission control, reconciliation (requires -faults)")
	drift := fs.Bool("drift", false, "kinetic drift: certificate monitoring and repair-policy frontier")
	recovery := fs.Bool("recovery", false, "crash recovery: kill-point chaos, snapshot restore, rejoin in place")
	groups := fs.Bool("groups", false, "multi-group trees on a shared substrate: memory amortization sweep")
	scale := fs.Bool("scale", false, "large-n comparison vs the k-d-tree greedy")
	dims := fs.Bool("dims", false, "delay convergence across dimensions 2..5")
	all := fs.Bool("all", false, "run everything")
	paper := fs.Bool("paper", false, "use the paper's sizes (up to 5M) and 200 trials")
	sizesFlag := fs.String("sizes", "", "comma-separated sizes (overrides defaults)")
	trials := fs.Int("trials", 0, "trials per size (default 20, or 200 with -paper)")
	seed := fs.Uint64("seed", 2004, "random seed")
	workers := fs.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
	buildWorkers := fs.Int("build-workers", 0, "workers inside each build (0 = serial; trees are identical regardless)")
	csvPath := fs.String("csv", "", "also write the sweep as CSV here")
	jsonPath := fs.String("json", "", "write all executed experiment rows as JSON here")
	metricsPath := fs.String("metrics", "", "write a JSON metrics snapshot (build-phase spans) here on exit")
	tracePath := fs.String("trace", "", "write the faults sweep's Chrome trace-event JSON timeline here (requires -faults)")
	flightPath := fs.String("flight", "", "record the drift sweep's flight samples and write them here as JSONL (requires -drift)")
	flightInterval := fs.Int("flight-interval", 1, "sample every N maintenance rounds (requires -flight)")
	sloSpec := fs.String("slo", "", "';'-joined SLO rules watched per flight sample (requires -flight)")
	openMetricsPath := fs.String("openmetrics", "", "write the final registry state as OpenMetrics exposition text here on exit")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := startPprof(*pprofAddr); err != nil {
		return err
	}
	if *all {
		*table1, *fig4, *fig5, *fig6, *fig7, *fig8 = true, true, true, true, true, true
		*baselines, *churn, *dims, *repairs, *scale, *faults = true, true, true, true, true, true
		*partition, *drift, *groups, *recovery = true, true, true, true
	}
	// The partition sweep extends the fault sweep's scenario; alone it would
	// skip the context that makes its columns comparable.
	if *partition && !*faults {
		return fmt.Errorf("-partition requires -faults (it extends the unreliable-control-plane sweep)")
	}
	// -flight samples the drift sweep's round clock; without -drift it would
	// silently write an empty ring, so reject the combination before any
	// output file is created. The tuning flags only matter with a recorder.
	if *flightPath != "" && !*drift {
		return fmt.Errorf("-flight requires -drift (it samples the drift sweep's maintenance rounds)")
	}
	if *flightPath == "" {
		intervalSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "flight-interval" {
				intervalSet = true
			}
		})
		if intervalSet {
			return fmt.Errorf("-flight-interval requires -flight")
		}
		if *sloSpec != "" {
			return fmt.Errorf("-slo requires -flight")
		}
	}
	// Fail fast: requested outputs must be writable before hours of sweeping.
	metricsF, err := cliutil.CreateOutput("metrics", *metricsPath)
	if err != nil {
		return err
	}
	flightF, err := cliutil.CreateOutput("flight", *flightPath)
	if err != nil {
		return err
	}
	openMetricsF, err := cliutil.CreateOutput("openmetrics", *openMetricsPath)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if metricsF != nil || flightF != nil || openMetricsF != nil {
		reg = obs.New()
	}
	if !*table1 && !*fig4 && !*fig5 && !*fig6 && !*fig7 && !*fig8 && !*baselines && !*churn && !*dims && !*repairs && !*scale && !*faults && !*drift && !*groups && !*recovery {
		fs.Usage()
		return fmt.Errorf("nothing selected (try -all)")
	}
	// -trace records the fault sweep's timeline; without -faults it would
	// silently write an empty file, so reject the combination outright.
	var rec *trace.Recorder
	var traceF *os.File
	if *tracePath != "" {
		if !*faults {
			return fmt.Errorf("-trace requires -faults (it records the fault sweep's event timeline)")
		}
		if traceF, err = cliutil.CreateOutput("trace", *tracePath); err != nil {
			return err
		}
		rec = trace.New(1 << 20)
		rec.Observe(reg)
	}
	var fr *flight.Recorder
	if flightF != nil {
		rules, err := flight.ParseSLORules(*sloSpec)
		if err != nil {
			return fmt.Errorf("-slo: %w", err)
		}
		fr = flight.New(reg, flight.Config{
			Interval: *flightInterval, Rules: rules, Trace: rec,
		})
	}

	sizes := defaultSizes
	nTrials := 20
	if *paper {
		sizes = paperSizes
		nTrials = 200
	}
	if *sizesFlag != "" {
		parsed, err := parseSizes(*sizesFlag)
		if err != nil {
			return err
		}
		sizes = parsed
	}
	if *trials > 0 {
		nTrials = *trials
	}

	manifest := struct {
		Seed      uint64                    `json:"seed"`
		Trials    int                       `json:"trials"`
		Disk      []experiment.Row          `json:"disk,omitempty"`
		Ball      []experiment.Row          `json:"ball,omitempty"`
		Baselines []experiment.BaselineRow  `json:"baselines,omitempty"`
		Scalable  []experiment.ScalableRow  `json:"scalable,omitempty"`
		Churn     []experiment.ChurnRow     `json:"churn,omitempty"`
		Dims      []experiment.DimRow       `json:"dims,omitempty"`
		Repairs   []experiment.RepairRow    `json:"repairs,omitempty"`
		Faults    []experiment.FaultRow     `json:"faults,omitempty"`
		Partition []experiment.PartitionRow `json:"partition,omitempty"`
		Drift     []experiment.DriftRow     `json:"drift,omitempty"`
		Recovery  []experiment.RecoveryRow  `json:"recovery,omitempty"`
		Groups    []experiment.GroupRow     `json:"groups,omitempty"`
		Metrics   *obs.Snapshot             `json:"metrics,omitempty"`
	}{Seed: *seed}

	need2D := *table1 || *fig4 || *fig5 || *fig6 || *fig7
	var rows2 []experiment.Row
	if need2D {
		cfg := experiment.DiskConfig(sizes, nTrials, *seed)
		cfg.Workers = *workers
		cfg.BuildWorkers = *buildWorkers
		cfg.Obs = reg
		cfg.Progress = func(m string) { fmt.Fprintln(os.Stderr, "[disk]", m) }
		var err error
		if rows2, err = experiment.Run(cfg); err != nil {
			return err
		}
		manifest.Disk = rows2
	}
	manifest.Trials = nTrials

	if *table1 {
		fmt.Fprintln(out, "Table I: unit disk, uniform points, source at center")
		fmt.Fprintf(out, "(%d trials per size, seed %d)\n\n", nTrials, *seed)
		if err := experiment.Table1(rows2).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if *csvPath != "" && rows2 != nil {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := experiment.WriteCSV(rows2, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	type figure struct {
		enabled bool
		build   func() (renderer, error)
	}
	figures := []figure{
		{*fig4, func() (renderer, error) { return experiment.Figure4(rows2) }},
		{*fig5, func() (renderer, error) {
			return experiment.Figure5(rows2, "Figure 5: max delay, out-degree 2 vs 6 (unit disk)")
		}},
		{*fig6, func() (renderer, error) { return experiment.Figure6(rows2) }},
		{*fig7, func() (renderer, error) { return experiment.Figure7(rows2) }},
	}
	for _, f := range figures {
		if !f.enabled {
			continue
		}
		p, err := f.build()
		if err != nil {
			return err
		}
		if err := p.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *fig8 {
		cfg := experiment.BallConfig(sizes, nTrials, *seed)
		cfg.Workers = *workers
		cfg.BuildWorkers = *buildWorkers
		cfg.Obs = reg
		cfg.Progress = func(m string) { fmt.Fprintln(os.Stderr, "[ball]", m) }
		rows3, err := experiment.Run(cfg)
		if err != nil {
			return err
		}
		manifest.Ball = rows3
		p, err := experiment.Figure5(rows3,
			"Figure 8: max delay in the 3-D unit ball, out-degree 2 vs 10")
		if err != nil {
			return err
		}
		if err := p.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprintln(out, "3-D sweep data:")
		if err := experiment.Table1(rows3).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *churn {
		cSizes := clampSizes(sizes, 5000)
		extTrials := trialsForExtensions(nTrials)
		fmt.Fprintf(out, "Decentralized protocol vs centralized (degree 6, %d trials):\n\n", extTrials)
		rows, err := experiment.RunChurn(experiment.ChurnConfig{
			Sizes: cSizes, Trials: extTrials, Seed: *seed, MaxOutDegree: 6,
		})
		if err != nil {
			return err
		}
		manifest.Churn = rows
		if err := experiment.ChurnTable(rows).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *dims {
		fmt.Fprintln(out, "Delay convergence across dimensions (n = 2000):")
		fmt.Fprintln(out)
		rows, err := experiment.RunDimSweep(experiment.DimSweepConfig{
			Dims: []int{2, 3, 4, 5}, N: 2000, Trials: trialsForExtensions(nTrials), Seed: *seed,
		})
		if err != nil {
			return err
		}
		manifest.Dims = rows
		if err := experiment.DimSweepTable(rows, 2000).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *scale {
		extTrials := trialsForExtensions(nTrials)
		fmt.Fprintf(out, "Large-n comparison, near-linear algorithms only (degree 6, %d trials):\n\n", extTrials)
		rows, err := experiment.RunScalableBaselines(experiment.BaselineConfig{
			Sizes: sizes, Trials: extTrials, Seed: *seed, MaxOutDegree: 6, Workers: *workers,
		})
		if err != nil {
			return err
		}
		manifest.Scalable = rows
		if err := experiment.ScalableTable(rows).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *repairs {
		fmt.Fprintln(out, "Failure/repair robustness (n = 2000, degree 6):")
		fmt.Fprintln(out)
		rows, err := experiment.RunRepairs(experiment.RepairConfig{
			N: 2000, FailFractions: []float64{0.01, 0.05, 0.10},
			Trials: trialsForExtensions(nTrials), Seed: *seed, MaxOutDegree: 6,
		})
		if err != nil {
			return err
		}
		manifest.Repairs = rows
		if err := experiment.RepairTable(rows, 2000).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *faults {
		fmt.Fprintln(out, "Unreliable control plane (n = 500, degree 6):")
		fmt.Fprintln(out)
		rows, err := experiment.RunFaultSweep(experiment.FaultSweepConfig{
			N: 500, LossRates: []float64{0, 0.05, 0.10, 0.20, 0.30},
			Trials: trialsForExtensions(nTrials), Seed: *seed, MaxOutDegree: 6,
			Trace: rec,
		})
		if err != nil {
			return err
		}
		manifest.Faults = rows
		if err := experiment.FaultTable(rows, 500).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *partition {
		fmt.Fprintln(out, "Partition tolerance (n = 300, degree 6, 5% loss, split rounds 2-8):")
		fmt.Fprintln(out)
		rows, err := experiment.RunPartitionSweep(experiment.PartitionSweepConfig{
			N: 300, Sides: []int{2, 3, 4},
			Trials: trialsForExtensions(nTrials), Seed: *seed, MaxOutDegree: 6,
			Trace: rec,
		})
		if err != nil {
			return err
		}
		manifest.Partition = rows
		if err := experiment.PartitionTable(rows, 300).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *drift {
		fmt.Fprintln(out, "Kinetic drift (n = 800, degree 6, jump model, re-estimation every 3 rounds):")
		fmt.Fprintln(out)
		rows, err := experiment.RunDriftSweep(experiment.DriftSweepConfig{
			N: 800, Rates: []float64{0.003, 0.01},
			Trials: trialsForExtensions(nTrials), Seed: *seed, MaxOutDegree: 6,
			Trace: rec, Obs: reg, Flight: fr,
		})
		if err != nil {
			return err
		}
		manifest.Drift = rows
		if err := experiment.DriftTable(rows, 800).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *recovery {
		fmt.Fprintln(out, "Crash recovery (n = 200, degree 6, kill-point chaos with snapshot restore):")
		fmt.Fprintln(out)
		rows, err := experiment.RunRecoverySweep(experiment.RecoverySweepConfig{
			N: 200, Trials: trialsForExtensions(nTrials), Seed: *seed, MaxOutDegree: 6,
		})
		if err != nil {
			return err
		}
		manifest.Recovery = rows
		if err := experiment.RecoveryTable(rows, 200).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *groups {
		fmt.Fprintln(out, "Multi-group trees on a shared substrate (1000 hosts, degree 6):")
		fmt.Fprintln(out)
		rows, err := experiment.RunGroupSweep(experiment.GroupSweepConfig{
			Hosts: 1000, Groups: []int{1, 8, 32}, Overlaps: []float64{0, 0.5},
			MeanSize: 100, Sources: 4, MaxOutDegree: 6,
			Trials: trialsForExtensions(nTrials), Seed: *seed,
			Progress: func(m string) { fmt.Fprintln(os.Stderr, "[groups]", m) },
		})
		if err != nil {
			return err
		}
		manifest.Groups = rows
		if err := experiment.GroupTable(rows).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if *baselines {
		bSizes := clampSizes(sizes, 5000) // greedy baselines are O(n^2)
		fmt.Fprintf(out, "Baseline comparison (degree 6, sizes capped at 5000, %d trials):\n\n", nTrials)
		rows, err := experiment.RunBaselines(experiment.BaselineConfig{
			Sizes: bSizes, Trials: nTrials, Seed: *seed, MaxOutDegree: 6, Workers: *workers,
		})
		if err != nil {
			return err
		}
		manifest.Baselines = rows
		if err := experiment.BaselineTable(rows, 6).Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}

	if reg != nil {
		snap := reg.Snapshot()
		manifest.Metrics = &snap
	}
	if err := cliutil.WriteFlightReport(fr, out); err != nil {
		return err
	}
	if err := cliutil.WriteMetricsJSON(reg, metricsF); err != nil {
		return err
	}
	if err := cliutil.WriteFlightJSONL(fr, flightF); err != nil {
		return err
	}
	if err := cliutil.WriteOpenMetrics(reg, fr, openMetricsF); err != nil {
		return err
	}
	if traceF != nil {
		if err := rec.WriteChromeJSON(traceF); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := traceF.Close(); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(manifest, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return fmt.Errorf("writing JSON: %w", err)
		}
	}
	return nil
}

// trialsForExtensions caps the replication of the slower extension
// experiments at 10.
func trialsForExtensions(n int) int {
	if n > 10 {
		n = 10
	}
	return n
}

type renderer interface {
	Render(w io.Writer) error
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid size %q", p)
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}

func clampSizes(sizes []int, maxSize int) []int {
	out := make([]int, 0, len(sizes))
	for _, s := range sizes {
		if s <= maxSize {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = []int{100, 500, 1000, 2000, 5000}
	}
	return out
}
