package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("accepted empty args")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("accepted unknown subcommand")
	}
}

func TestGenBuildStatsPipeline(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "pts.json")
	treeFile := filepath.Join(dir, "tree.json")
	dotFile := filepath.Join(dir, "tree.dot")

	if err := run([]string{"gen", "-n", "200", "-seed", "5", "-o", pts}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", "-points", pts, "-degree", "6", "-o", treeFile, "-dot", dotFile}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stats", "-points", pts, "-tree", treeFile}); err != nil {
		t.Fatal(err)
	}
	dot, err := os.ReadFile(dotFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph") {
		t.Error("DOT output malformed")
	}
}

func TestGenVariants(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range [][]string{
		{"gen", "-n", "50", "-dim", "2", "-dist", "clustered", "-o", filepath.Join(dir, "c.json")},
		{"gen", "-n", "50", "-dim", "3", "-o", filepath.Join(dir, "b.json")},
	} {
		if err := run(tc); err != nil {
			t.Fatalf("%v: %v", tc, err)
		}
	}
	// 3-D points build too.
	if err := run([]string{"build", "-points", filepath.Join(dir, "b.json"), "-degree", "2"}); err != nil {
		t.Fatal(err)
	}
	// Unsupported combination.
	if err := run([]string{"gen", "-dim", "3", "-dist", "clustered", "-o", filepath.Join(dir, "x.json")}); err == nil {
		t.Error("accepted 3-D clustered")
	}
	if err := run([]string{"gen", "-n", "-3", "-o", filepath.Join(dir, "x.json")}); err == nil {
		t.Error("accepted negative n")
	}
}

func TestBuildValidation(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"build"}); err == nil {
		t.Error("accepted missing -points")
	}
	if err := run([]string{"build", "-points", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("accepted missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"dim": 2, "points": [[1]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", "-points", bad}); err == nil {
		t.Error("accepted malformed points")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"dim": 2, "points": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", "-points", empty}); err == nil {
		t.Error("accepted empty points")
	}
}

func TestBuildForceK(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "pts.json")
	if err := run([]string{"gen", "-n", "500", "-seed", "9", "-o", pts}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", "-points", pts, "-force-k", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", "-points", pts, "-force-k", "20"}); err == nil {
		t.Error("accepted infeasible forced k")
	}
}

func TestStatsValidation(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "pts.json")
	treeFile := filepath.Join(dir, "tree.json")
	if err := run([]string{"stats"}); err == nil {
		t.Error("accepted missing flags")
	}
	if err := run([]string{"gen", "-n", "20", "-o", pts}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", "-points", pts, "-o", treeFile}); err != nil {
		t.Fatal(err)
	}
	// Mismatched sizes rejected.
	pts2 := filepath.Join(dir, "pts2.json")
	if err := run([]string{"gen", "-n", "5", "-o", pts2}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"stats", "-points", pts2, "-tree", treeFile}); err == nil {
		t.Error("accepted mismatched tree/points")
	}
}

func TestHighDimensionalBuild(t *testing.T) {
	// Hand-written 4-D points exercise the BuildND path.
	dir := t.TempDir()
	pts := filepath.Join(dir, "p4.json")
	content := `{"dim": 4, "points": [[0,0,0,0],[0.5,0,0,0],[0,0.5,0,0],[0,0,0.5,0],[0,0,0,0.5],[0.2,0.2,0.2,0.2]]}`
	if err := os.WriteFile(pts, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", "-points", pts, "-degree", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestPointsFileValidate(t *testing.T) {
	cases := []pointsFile{
		{Dim: 1, Points: [][]float64{{1}}},
		{Dim: 2, Points: nil},
		{Dim: 2, Points: [][]float64{{1, 2}, {3}}},
	}
	for i, pf := range cases {
		if err := pf.validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	good := pointsFile{Dim: 2, Points: [][]float64{{0, 0}, {1, 1}}}
	if err := good.validate(); err != nil {
		t.Error(err)
	}
}

func TestRenderSubcommand(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "pts.json")
	treeFile := filepath.Join(dir, "tree.json")
	svgFile := filepath.Join(dir, "tree.svg")

	if err := run([]string{"gen", "-n", "80", "-seed", "3", "-o", pts}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", "-points", pts, "-o", treeFile}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"render", "-points", pts, "-tree", treeFile, "-o", svgFile, "-color-delay", "-title", "demo"}); err != nil {
		t.Fatal(err)
	}
	svg, err := os.ReadFile(svgFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") || !strings.Contains(string(svg), "demo") {
		t.Error("SVG output malformed")
	}
	// Missing flags rejected.
	if err := run([]string{"render", "-points", pts}); err == nil {
		t.Error("accepted missing flags")
	}
}

func TestCompareSubcommand(t *testing.T) {
	dir := t.TempDir()
	pts := filepath.Join(dir, "pts.json")
	if err := run([]string{"gen", "-n", "100", "-seed", "6", "-o", pts}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compare", "-points", pts, "-degree", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"compare"}); err == nil {
		t.Error("accepted missing -points")
	}
}
