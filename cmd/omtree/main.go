// Command omtree generates point sets and builds minimum-delay
// degree-constrained multicast trees over them.
//
// Subcommands:
//
//	omtree gen   -n 1000 -dim 2 -seed 1 -dist uniform -o points.json
//	omtree build -points points.json -degree 6 -o tree.json [-workers N] [-verify] [-dot tree.dot]
//	omtree stats -points points.json -tree tree.json
//	omtree render -points points.json -tree tree.json -o tree.svg
//	omtree compare -points points.json -degree 6
//
// build additionally takes the shared observability flags: -flight FILE
// attaches a flight recorder (the completed build lands one sample, written
// to FILE as JSONL, and a deterministic health report follows the build
// stats on stdout), -slo RULES watches the sample against declarative
// health rules, and -openmetrics FILE writes the build metrics as
// Prometheus/OpenMetrics exposition text. Output files are created up
// front, so an unwritable path fails before the build starts.
//
// Points files are JSON: {"dim": D, "points": [[x, y, ...], ...]} with
// points[0] the multicast source. Tree files use the tree's JSON codec.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"omtree"
	"omtree/internal/cliutil"
	"omtree/internal/invariant"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "omtree:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: omtree <gen|build|stats|render|compare> [flags]")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:])
	case "build":
		return cmdBuild(args[1:])
	case "stats":
		return cmdStats(args[1:])
	case "render":
		return cmdRender(args[1:])
	case "compare":
		return cmdCompare(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, build, stats, render or compare)", args[0])
	}
}

// pointsFile is the JSON schema of a point set; points[0] is the source.
type pointsFile struct {
	Dim    int         `json:"dim"`
	Points [][]float64 `json:"points"`
}

func (p *pointsFile) validate() error {
	if p.Dim < 2 {
		return fmt.Errorf("dim %d < 2", p.Dim)
	}
	if len(p.Points) == 0 {
		return fmt.Errorf("no points (points[0] must be the source)")
	}
	for i, pt := range p.Points {
		if len(pt) != p.Dim {
			return fmt.Errorf("point %d has %d coordinates, want %d", i, len(pt), p.Dim)
		}
	}
	return nil
}

func loadPoints(path string) (*pointsFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading points: %w", err)
	}
	var pf pointsFile
	if err := json.Unmarshal(data, &pf); err != nil {
		return nil, fmt.Errorf("decoding points: %w", err)
	}
	if err := pf.validate(); err != nil {
		return nil, fmt.Errorf("invalid points file: %w", err)
	}
	return &pf, nil
}

func writeJSON(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(append(data, '\n'))
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	n := fs.Int("n", 1000, "number of receivers")
	dim := fs.Int("dim", 2, "dimension (2 or 3)")
	seed := fs.Uint64("seed", 1, "random seed")
	dist := fs.String("dist", "uniform", "distribution: uniform or clustered (2-D only)")
	out := fs.String("o", "-", "output file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 0 {
		return fmt.Errorf("n must be non-negative")
	}
	r := omtree.NewRand(*seed)
	pf := pointsFile{Dim: *dim}
	switch {
	case *dim == 2 && *dist == "uniform":
		pf.Points = append(pf.Points, []float64{0, 0})
		for _, p := range r.UniformDiskN(*n, 1) {
			pf.Points = append(pf.Points, []float64{p.X, p.Y})
		}
	case *dim == 2 && *dist == "clustered":
		pf.Points = append(pf.Points, []float64{0, 0})
		// Mixed density with a 20% uniform floor, per the paper's
		// epsilon-bounded extension.
		clusters := []omtree.Cluster{
			{Center: omtree.Point2{X: 0.5, Y: 0.3}, Sigma: 0.08, Weight: 1},
			{Center: omtree.Point2{X: -0.4, Y: 0.5}, Sigma: 0.08, Weight: 1},
			{Center: omtree.Point2{X: 0.1, Y: -0.6}, Sigma: 0.08, Weight: 1},
		}
		for _, p := range r.MixedDensityDiskN(*n, 1, 0.2, clusters) {
			pf.Points = append(pf.Points, []float64{p.X, p.Y})
		}
	case *dim == 3 && *dist == "uniform":
		pf.Points = append(pf.Points, []float64{0, 0, 0})
		for _, p := range r.UniformBall3N(*n, 1) {
			pf.Points = append(pf.Points, []float64{p.X, p.Y, p.Z})
		}
	default:
		return fmt.Errorf("unsupported dim/dist combination %d/%s", *dim, *dist)
	}
	return writeJSON(*out, pf)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	pointsPath := fs.String("points", "", "points JSON file (required)")
	degree := fs.Int("degree", 0, "max out-degree (0 = natural for the dimension)")
	forceK := fs.Int("force-k", 0, "pin the grid ring count (0 = automatic)")
	workers := fs.Int("workers", 0, "build workers (0 = automatic, 1 = serial; the tree is identical either way)")
	verify := fs.Bool("verify", false, "re-check tree invariants (spanning, degree bound, radius) after the build")
	out := fs.String("o", "", "write tree JSON here")
	dotOut := fs.String("dot", "", "write Graphviz DOT here")
	flightPath := fs.String("flight", "", "record a flight sample of the build metrics and write it here as JSONL")
	sloSpec := fs.String("slo", "", "';'-joined SLO rules watched against the build sample (requires -flight)")
	openMetricsPath := fs.String("openmetrics", "", "write the build metrics as OpenMetrics exposition text here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pointsPath == "" {
		return fmt.Errorf("-points is required")
	}
	if *sloSpec != "" && *flightPath == "" {
		return fmt.Errorf("-slo requires -flight")
	}
	// Fail fast: requested outputs must be writable before the build runs.
	flightF, err := cliutil.CreateOutput("flight", *flightPath)
	if err != nil {
		return err
	}
	openMetricsF, err := cliutil.CreateOutput("openmetrics", *openMetricsPath)
	if err != nil {
		return err
	}
	pf, err := loadPoints(*pointsPath)
	if err != nil {
		return err
	}

	var opts []omtree.Option
	if *degree > 0 {
		opts = append(opts, omtree.WithMaxOutDegree(*degree))
	}
	if *forceK > 0 {
		opts = append(opts, omtree.WithForceK(*forceK))
	}
	if *workers != 0 {
		opts = append(opts, omtree.WithParallelism(*workers))
	}
	var reg *omtree.Observer
	var fr *omtree.FlightRecorder
	if flightF != nil || openMetricsF != nil {
		reg = omtree.NewObserver()
		opts = append(opts, omtree.WithObserver(reg))
	}
	if flightF != nil {
		rules, err := omtree.ParseSLORules(*sloSpec)
		if err != nil {
			return fmt.Errorf("-slo: %w", err)
		}
		fr = omtree.NewFlightRecorder(reg, omtree.FlightConfig{Rules: rules})
		opts = append(opts, omtree.WithFlight(fr))
	}

	start := time.Now()
	res, err := buildAny(pf, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	fmt.Printf("nodes:      %d (1 source + %d receivers)\n", res.Tree.N(), res.Tree.N()-1)
	fmt.Printf("variant:    %v (max out-degree %d)\n", res.Variant, res.MaxOutDegree)
	fmt.Printf("rings k:    %d\n", res.K)
	fmt.Printf("radius:     %.6f (scale %.6f)\n", res.Radius, res.Scale)
	fmt.Printf("core delay: %.6f\n", res.CoreDelay)
	fmt.Printf("bound (7):  %.6f\n", res.Bound)
	fmt.Printf("build time: %v\n", elapsed)

	if *verify {
		dist := func(i, j int) float64 {
			return omtree.Vec(pf.Points[i]).Dist(omtree.Vec(pf.Points[j]))
		}
		violations := invariant.Check(res.Tree, len(pf.Points), 0, res.MaxOutDegree, dist, res.Radius)
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "omtree: invariant violated:", v)
			}
			return fmt.Errorf("%d invariant violations", len(violations))
		}
		fmt.Println("verify:     ok (spanning, degree bound, radius)")
	}

	if err := cliutil.WriteFlightReport(fr, os.Stdout); err != nil {
		return err
	}
	if err := cliutil.WriteFlightJSONL(fr, flightF); err != nil {
		return err
	}
	if err := cliutil.WriteOpenMetrics(reg, fr, openMetricsF); err != nil {
		return err
	}
	if *out != "" {
		if err := writeJSON(*out, res.Tree); err != nil {
			return fmt.Errorf("writing tree: %w", err)
		}
	}
	if *dotOut != "" {
		f, err := os.Create(*dotOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Tree.WriteDOT(f, nil); err != nil {
			return fmt.Errorf("writing DOT: %w", err)
		}
	}
	return nil
}

func buildAny(pf *pointsFile, opts []omtree.Option) (*omtree.Result, error) {
	switch pf.Dim {
	case 2:
		src := omtree.Point2{X: pf.Points[0][0], Y: pf.Points[0][1]}
		recv := make([]omtree.Point2, 0, len(pf.Points)-1)
		for _, p := range pf.Points[1:] {
			recv = append(recv, omtree.Point2{X: p[0], Y: p[1]})
		}
		return omtree.Build(src, recv, opts...)
	case 3:
		src := omtree.Point3{X: pf.Points[0][0], Y: pf.Points[0][1], Z: pf.Points[0][2]}
		recv := make([]omtree.Point3, 0, len(pf.Points)-1)
		for _, p := range pf.Points[1:] {
			recv = append(recv, omtree.Point3{X: p[0], Y: p[1], Z: p[2]})
		}
		return omtree.Build3D(src, recv, opts...)
	default:
		src := omtree.Vec(pf.Points[0])
		recv := make([]omtree.Vec, 0, len(pf.Points)-1)
		for _, p := range pf.Points[1:] {
			recv = append(recv, omtree.Vec(p))
		}
		return omtree.BuildND(src, recv, opts...)
	}
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	pointsPath := fs.String("points", "", "points JSON file (required)")
	treePath := fs.String("tree", "", "tree JSON file (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pointsPath == "" || *treePath == "" {
		return fmt.Errorf("-points and -tree are required")
	}
	pf, err := loadPoints(*pointsPath)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(*treePath)
	if err != nil {
		return fmt.Errorf("reading tree: %w", err)
	}
	var t omtree.Tree
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("decoding tree: %w", err)
	}
	if t.N() != len(pf.Points) {
		return fmt.Errorf("tree has %d nodes but points file has %d", t.N(), len(pf.Points))
	}
	dist := func(i, j int) float64 {
		return omtree.Vec(pf.Points[i]).Dist(omtree.Vec(pf.Points[j]))
	}
	delays := t.Delays(dist)
	var radius float64
	for _, d := range delays {
		if d > radius {
			radius = d
		}
	}
	hist := map[int]int{}
	for i := 0; i < t.N(); i++ {
		hist[t.OutDegree(i)]++
	}
	var avg float64
	if t.N() > 1 {
		var sum float64
		for _, d := range delays {
			sum += d
		}
		avg = sum / float64(t.N()-1)
	}
	load := t.ForwardingLoad()
	maxLoad := 0
	for _, l := range load {
		if l > maxLoad {
			maxLoad = l
		}
	}
	fmt.Printf("nodes:        %d (root %d)\n", t.N(), t.Root())
	fmt.Printf("radius:       %.6f\n", radius)
	fmt.Printf("avg delay:    %.6f\n", avg)
	fmt.Printf("max fwd load: %d descendants\n", maxLoad)
	fmt.Printf("height:       %d hops\n", t.Height())
	fmt.Printf("max degree:   %d\n", t.MaxOutDegree())
	fmt.Printf("diameter:     %.6f\n", t.WeightedDiameter(dist))
	fmt.Printf("degree histogram:\n")
	for d := 0; d <= t.MaxOutDegree(); d++ {
		if c := hist[d]; c > 0 {
			fmt.Printf("  %2d children: %d nodes\n", d, c)
		}
	}
	return nil
}

func cmdRender(args []string) error {
	fs := flag.NewFlagSet("render", flag.ContinueOnError)
	pointsPath := fs.String("points", "", "points JSON file (required, dim 2)")
	treePath := fs.String("tree", "", "tree JSON file (required)")
	out := fs.String("o", "", "output SVG path (required)")
	size := fs.Int("size", 800, "canvas size in pixels")
	colorByDelay := fs.Bool("color-delay", false, "shade edges by child delay")
	title := fs.String("title", "", "caption")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pointsPath == "" || *treePath == "" || *out == "" {
		return fmt.Errorf("-points, -tree and -o are required")
	}
	pf, err := loadPoints(*pointsPath)
	if err != nil {
		return err
	}
	if pf.Dim != 2 {
		return fmt.Errorf("render supports dim 2, got %d", pf.Dim)
	}
	data, err := os.ReadFile(*treePath)
	if err != nil {
		return fmt.Errorf("reading tree: %w", err)
	}
	var t omtree.Tree
	if err := json.Unmarshal(data, &t); err != nil {
		return fmt.Errorf("decoding tree: %w", err)
	}
	if t.N() != len(pf.Points) {
		return fmt.Errorf("tree has %d nodes but points file has %d", t.N(), len(pf.Points))
	}
	pts := make([]omtree.Point2, len(pf.Points))
	for i, p := range pf.Points {
		pts[i] = omtree.Point2{X: p[0], Y: p[1]}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	return omtree.RenderSVG(f, &t, pts, omtree.VizOptions{
		SizePx: *size, ColorByDelay: *colorByDelay, Title: *title,
	})
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	pointsPath := fs.String("points", "", "points JSON file (required, dim 2)")
	degree := fs.Int("degree", 6, "max out-degree for the constrained algorithms")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pointsPath == "" {
		return fmt.Errorf("-points is required")
	}
	pf, err := loadPoints(*pointsPath)
	if err != nil {
		return err
	}
	if pf.Dim != 2 {
		return fmt.Errorf("compare supports dim 2, got %d", pf.Dim)
	}
	pts := make([]omtree.Point2, len(pf.Points))
	for i, p := range pf.Points {
		pts[i] = omtree.Point2{X: p[0], Y: p[1]}
	}
	recv := pts[1:]
	dist := func(i, j int) float64 { return pts[i].Dist(pts[j]) }
	n := len(pts)

	type row struct {
		name   string
		radius float64
		t      time.Duration
	}
	var rows []row
	timeIt := func(name string, build func() (*omtree.Tree, error)) error {
		start := time.Now()
		tr, err := build()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, row{name: name, radius: tr.Radius(dist), t: time.Since(start)})
		return nil
	}

	if err := timeIt("star (lower bound)", func() (*omtree.Tree, error) {
		return omtree.Star(n, 0)
	}); err != nil {
		return err
	}
	if err := timeIt("polar-grid", func() (*omtree.Tree, error) {
		res, err := omtree.Build(pts[0], recv, omtree.WithMaxOutDegree(*degree))
		if err != nil {
			return nil, err
		}
		return res.Tree, nil
	}); err != nil {
		return err
	}
	if err := timeIt("bisection", func() (*omtree.Tree, error) {
		tr, _, err := omtree.BuildBisection(pts, 0, *degree)
		return tr, err
	}); err != nil {
		return err
	}
	if err := timeIt("greedy-knn", func() (*omtree.Tree, error) {
		return omtree.GreedyKNN(pts, *degree, 0)
	}); err != nil {
		return err
	}
	if n <= 5001 { // the O(n^2) heuristics stay usable
		if err := timeIt("greedy-exact", func() (*omtree.Tree, error) {
			return omtree.GreedyClosest(n, 0, dist, *degree)
		}); err != nil {
			return err
		}
		if err := timeIt("bandwidth-latency", func() (*omtree.Tree, error) {
			return omtree.BandwidthLatency(n, 0, dist, *degree, nil)
		}); err != nil {
			return err
		}
	}
	if err := timeIt("balanced-kary", func() (*omtree.Tree, error) {
		return omtree.BalancedKary(n, 0, dist, *degree)
	}); err != nil {
		return err
	}

	fmt.Printf("%d nodes, out-degree cap %d:\n", n, *degree)
	for _, r := range rows {
		fmt.Printf("  %-20s radius %.4f   (%v)\n", r.name, r.radius, r.t.Round(time.Microsecond))
	}
	return nil
}
