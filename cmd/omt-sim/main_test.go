package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestRunBasic(t *testing.T) {
	if err := run([]string{"-n", "300", "-degree", "6", "-seed", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFailuresAndRepair(t *testing.T) {
	for _, strategy := range []string{"grandparent", "bestdelay"} {
		if err := run([]string{"-n", "300", "-degree", "2", "-fail", "3", "-repair", strategy}, io.Discard); err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
	}
}

func TestRunWithProcDelay(t *testing.T) {
	if err := run([]string{"-n", "100", "-proc", "0.01"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadStrategy(t *testing.T) {
	if err := run([]string{"-repair", "magic"}, io.Discard); err == nil {
		t.Error("accepted unknown repair strategy")
	}
}

func TestRunFaulty(t *testing.T) {
	if err := run([]string{"-n", "300", "-degree", "6", "-seed", "3",
		"-loss", "0.2", "-crash-rate", "0.005", "-fail", "3", "-packets", "3"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotFlagValidation(t *testing.T) {
	if err := run([]string{"-n", "100", "-snapshot", "x.omts"}, io.Discard); err == nil {
		t.Error("accepted -snapshot on the reliable path (no protocol session)")
	}
	if err := run([]string{"-restore", filepath.Join(t.TempDir(), "missing.omts")}, io.Discard); err == nil {
		t.Error("accepted a missing -restore file")
	}
	if err := run([]string{"-restore", "x.omts", "-loss", "0.1"}, io.Discard); err == nil {
		t.Error("accepted -restore combined with -loss")
	}
	if err := run([]string{"-restore", "x.omts", "-drift", "0.01"}, io.Discard); err == nil {
		t.Error("accepted -restore combined with -drift")
	}
}

func TestRestoreRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.omts")
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-restore", path}, io.Discard); err == nil {
		t.Error("restored a corrupt snapshot")
	}
}

func TestRunFaultyRejectsBadRates(t *testing.T) {
	if err := run([]string{"-n", "100", "-loss", "1.5"}, io.Discard); err == nil {
		t.Error("accepted loss rate 1.5")
	}
	if err := run([]string{"-n", "100", "-crash-rate", "-0.1", "-loss", "0.1"}, io.Discard); err == nil {
		t.Error("accepted negative crash rate")
	}
}
