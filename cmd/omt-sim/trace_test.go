package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTraceOutputDeterministic: the same seeded faulty run writes
// byte-identical Chrome JSON and text timelines both times — the
// acceptance bar for trace reproducibility.
func TestTraceOutputDeterministic(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(tag string) (jsonB, textB []byte) {
		jsonPath := filepath.Join(dir, tag+".json")
		textPath := filepath.Join(dir, tag+".txt")
		var out bytes.Buffer
		err := run([]string{"-n", "200", "-seed", "1", "-loss", "0.2", "-fail", "3",
			"-trace", jsonPath, "-trace-text", textPath}, &out)
		if err != nil {
			t.Fatal(err)
		}
		jsonB, err = os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		textB, err = os.ReadFile(textPath)
		if err != nil {
			t.Fatal(err)
		}
		return jsonB, textB
	}
	j1, t1 := runOnce("a")
	j2, t2 := runOnce("b")
	if !bytes.Equal(j1, j2) {
		t.Error("Chrome trace JSON differs between identical seeded runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("text timeline differs between identical seeded runs")
	}

	// The JSON must be a loadable Chrome trace: an object with a non-empty
	// traceEvents array whose entries carry the required fields.
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(j1, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace output has no events")
	}
	for _, e := range doc.TraceEvents[:5] {
		if e.Name == "" || e.Ph == "" || e.Pid == 0 {
			t.Fatalf("trace event missing required fields: %+v", e)
		}
	}
	if !bytes.Contains(t1, []byte("protocol/join.begin")) {
		t.Error("text timeline missing protocol events")
	}
}

// TestReliablePathTraces: tracing also covers the centralized build and
// the data-plane simulator on the reliable path.
func TestReliablePathTraces(t *testing.T) {
	dir := t.TempDir()
	textPath := filepath.Join(dir, "t.txt")
	var out bytes.Buffer
	if err := run([]string{"-n", "100", "-seed", "1", "-trace-text", textPath}, &out); err != nil {
		t.Fatal(err)
	}
	text, err := os.ReadFile(textPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"build/run.begin", "build/wire/cell", "netsim/packet.begin", "netsim/packet.end"} {
		if !bytes.Contains(text, []byte(want)) {
			t.Errorf("reliable-path timeline missing %q", want)
		}
	}
}

// TestOutputFlagsFailFast: an unwritable -metrics/-trace/-trace-text path
// errors out before any simulation work, naming the offending flag.
func TestOutputFlagsFailFast(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing-dir", "out.json")
	for _, flagName := range []string{"metrics", "trace", "trace-text"} {
		var out bytes.Buffer
		err := run([]string{"-n", "100", "-" + flagName, bad}, &out)
		if err == nil {
			t.Errorf("-%s with unwritable path did not fail", flagName)
			continue
		}
		if !strings.Contains(err.Error(), "-"+flagName) {
			t.Errorf("-%s error %q does not name the flag", flagName, err)
		}
		if out.Len() != 0 {
			t.Errorf("-%s: simulation ran before the output check", flagName)
		}
	}
}
