// Command omt-sim builds a minimum-delay multicast tree and runs the
// discrete-event overlay simulator over it: packet propagation, optional
// node failures, and subtree repair.
//
//	omt-sim -n 1000 -degree 6 -seed 1 -packets 5 -fail 3 -repair bestdelay
//
// It prints the simulated delivery (cross-checked against the analytic
// radius), the damage failures cause, and the post-repair delay.
//
// With -loss or -crash-rate, omt-sim instead runs the decentralized
// protocol over a fault-injected control plane: members join under message
// loss, -fail members crash without warning, heartbeat rounds run while the
// network misbehaves, and injection then stops so the overlay self-heals.
// It prints the degradation metrics (retries, timeouts, lost attempts,
// mid-operation crashes, coverage) and the healed tree's data-plane
// delivery ratio under the same link loss.
//
//	omt-sim -n 1000 -degree 6 -seed 1 -loss 0.2 -crash-rate 0.01 -fail 5
//
// -partition sides:start:heal splits the control plane into sides at the
// given maintenance round and heals it later: orphaned subtrees elect
// interim coordinators and keep serving joins in degraded mode, then a
// reconciliation pass re-grafts the islands after the heal. -join-rate
// throttles the mid-partition join storm with token-bucket admission
// control (excess joins queue, then shed with a retry-after hint).
//
//	omt-sim -n 300 -seed 3 -loss 0.05 -partition 2:2:8 -join-rate 2
//
// -drift RATE runs the kinetic-drift loop instead: members join reliably,
// coordinates then jump with the given per-epoch probability, periodic
// re-estimation sweeps refresh them, and the eq. 7 certificate monitor
// repairs the tree per -repair-policy (none, local, or full). It prints the
// sweep accounting, repair split, and the final certificate state.
//
//	omt-sim -n 1000 -degree 6 -seed 1 -drift 0.01 -repair-policy local
//
// -snapshot FILE checkpoints the protocol session's full state on exit as a
// versioned, checksummed, byte-deterministic snapshot (requires a protocol
// run: -loss, -crash-rate, -partition, -drift, or -restore). -restore FILE
// resumes a checkpointed session instead of starting fresh: the snapshot is
// decoded and validated, maintenance continues on the recorded round clock
// until the audit is clean again, and the resumed radius is printed. A torn
// or corrupt snapshot is rejected by checksum with an error, never a panic.
//
//	omt-sim -n 300 -seed 3 -loss 0.2 -fail 3 -snapshot sess.omts
//	omt-sim -restore sess.omts
//
// -metrics FILE writes a JSON metrics snapshot (build-phase spans, protocol
// and data-plane counters) on exit; -trace FILE writes a Chrome trace-event
// JSON timeline (load it in Perfetto or chrome://tracing) and -trace-text
// FILE the same timeline as deterministic plain text; -pprof ADDR serves
// net/http/pprof on the given address for live profiling.
//
// -flight FILE attaches a flight recorder: every maintenance round (or
// every -flight-interval rounds) the metrics registry is sampled into a
// bounded ring with per-series rates, -slo RULES watches the samples
// against declarative health rules (fired alerts land in the samples and
// the trace timeline), the retained ring is written to FILE as JSONL on
// exit, and a deterministic text health report is appended to stdout.
// -openmetrics FILE writes the final registry state as Prometheus/
// OpenMetrics exposition text for external scrapers.
//
//	omt-sim -n 800 -seed 9 -drift 0.003 -repair-policy none \
//	        -flight flight.jsonl -slo 'cert: protocol/certificate_ratio > 1.15 for 2'
//
// All are off by default and change nothing about the simulated results.
// Output files are created up front, so an unwritable path fails before the
// run starts.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"

	"omtree"
	"omtree/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "omt-sim:", err)
		os.Exit(1)
	}
}

// startPprof serves the default mux (which net/http/pprof registers on) at
// addr. The listener outlives run — profiling is for interactive use; tests
// do not pass -pprof.
func startPprof(addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof: %w", err)
	}
	go http.Serve(ln, nil)
	return nil
}

// writeTraces dumps the recorder as Chrome trace-event JSON and/or a plain
// text timeline to the pre-opened files.
func writeTraces(rec *omtree.TraceRecorder, jsonF, textF *os.File) error {
	if jsonF != nil {
		if err := rec.WriteChromeJSON(jsonF); err != nil {
			return err
		}
		if err := jsonF.Close(); err != nil {
			return err
		}
	}
	if textF != nil {
		if _, err := textF.WriteString(rec.Text()); err != nil {
			return err
		}
		if err := textF.Close(); err != nil {
			return err
		}
	}
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("omt-sim", flag.ContinueOnError)
	n := fs.Int("n", 1000, "number of receivers")
	degree := fs.Int("degree", 6, "max out-degree")
	seed := fs.Uint64("seed", 1, "random seed")
	packets := fs.Int("packets", 5, "packets per session")
	failCount := fs.Int("fail", 0, "number of internal nodes to fail mid-session")
	repairFlag := fs.String("repair", "bestdelay", "repair strategy: grandparent or bestdelay")
	procDelay := fs.Float64("proc", 0, "per-hop forwarding delay")
	loss := fs.Float64("loss", 0, "control/data message loss probability in [0, 1)")
	crashRate := fs.Float64("crash-rate", 0, "per-message chance the destination crashes, in [0, 1)")
	partitionSpec := fs.String("partition", "", "schedule a network split as sides:start:heal (maintenance-round numbers), e.g. 2:2:8")
	joinRate := fs.Float64("join-rate", 0, "admit at most this many joins per maintenance round during the partition join storm (0 = unthrottled; requires -partition)")
	driftRate := fs.Float64("drift", 0, "per-epoch coordinate jump probability; runs the kinetic-drift loop")
	repairPolicy := fs.String("repair-policy", "local", "kinetic repair policy: none, local, or full (requires -drift)")
	metricsPath := fs.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
	tracePath := fs.String("trace", "", "write a Chrome trace-event JSON timeline (Perfetto-loadable) to this file on exit")
	traceTextPath := fs.String("trace-text", "", "write a plain-text event timeline to this file on exit")
	flightPath := fs.String("flight", "", "record flight samples (registry snapshots per maintenance round) and write them to this file as JSONL on exit")
	flightInterval := fs.Int("flight-interval", 1, "sample every N maintenance rounds (requires -flight)")
	sloSpec := fs.String("slo", "", "';'-joined SLO rules watched per flight sample, e.g. 'cert: protocol/certificate_ratio > 1.15 for 3' (requires -flight)")
	openMetricsPath := fs.String("openmetrics", "", "write the final registry state as OpenMetrics exposition text to this file on exit")
	snapshotPath := fs.String("snapshot", "", "checkpoint the final protocol session state to this file as a restorable snapshot (requires -loss, -crash-rate, -partition, -drift, or -restore)")
	restorePath := fs.String("restore", "", "resume a checkpointed protocol session from this snapshot file instead of starting fresh")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := startPprof(*pprofAddr); err != nil {
		return err
	}
	// The flight tuning flags only matter with a recorder; reject them alone
	// so a typo'd invocation can't silently record nothing.
	if *flightPath == "" {
		intervalSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "flight-interval" {
				intervalSet = true
			}
		})
		if intervalSet {
			return fmt.Errorf("-flight-interval requires -flight")
		}
		if *sloSpec != "" {
			return fmt.Errorf("-slo requires -flight")
		}
	}
	// Crash-safe checkpointing only applies to a live protocol session; the
	// reliable build path has no session state to checkpoint.
	if *snapshotPath != "" && *loss == 0 && *crashRate == 0 && *partitionSpec == "" &&
		*driftRate == 0 && *restorePath == "" {
		return fmt.Errorf("-snapshot requires a protocol run (-loss, -crash-rate, -partition, -drift, or -restore)")
	}
	if *restorePath != "" {
		if *loss > 0 || *crashRate > 0 || *partitionSpec != "" || *driftRate > 0 {
			return fmt.Errorf("-restore does not combine with -loss, -crash-rate, -partition, or -drift")
		}
		// Fail fast on an unreadable checkpoint too, before any output file
		// is created.
		if _, err := os.Stat(*restorePath); err != nil {
			return fmt.Errorf("-restore: %w", err)
		}
	}
	// Fail fast: every requested output must be writable before any work runs.
	metricsF, err := cliutil.CreateOutput("metrics", *metricsPath)
	if err != nil {
		return err
	}
	traceF, err := cliutil.CreateOutput("trace", *tracePath)
	if err != nil {
		return err
	}
	traceTextF, err := cliutil.CreateOutput("trace-text", *traceTextPath)
	if err != nil {
		return err
	}
	flightF, err := cliutil.CreateOutput("flight", *flightPath)
	if err != nil {
		return err
	}
	openMetricsF, err := cliutil.CreateOutput("openmetrics", *openMetricsPath)
	if err != nil {
		return err
	}
	snapF, err := cliutil.CreateOutput("snapshot", *snapshotPath)
	if err != nil {
		return err
	}
	var reg *omtree.Observer
	if metricsF != nil || flightF != nil || openMetricsF != nil {
		reg = omtree.NewObserver()
	}
	var rec *omtree.TraceRecorder
	if traceF != nil || traceTextF != nil {
		rec = omtree.NewTraceRecorder(1 << 20)
		rec.Observe(reg)
	}
	var fr *omtree.FlightRecorder
	if flightF != nil {
		rules, err := omtree.ParseSLORules(*sloSpec)
		if err != nil {
			return fmt.Errorf("-slo: %w", err)
		}
		fr = omtree.NewFlightRecorder(reg, omtree.FlightConfig{
			Interval: *flightInterval, Rules: rules, Trace: rec,
		})
	}
	finish := func() error {
		if err := cliutil.WriteFlightReport(fr, out); err != nil {
			return err
		}
		if err := cliutil.WriteMetricsJSON(reg, metricsF); err != nil {
			return err
		}
		if err := cliutil.WriteFlightJSONL(fr, flightF); err != nil {
			return err
		}
		if err := cliutil.WriteOpenMetrics(reg, fr, openMetricsF); err != nil {
			return err
		}
		return writeTraces(rec, traceF, traceTextF)
	}

	pe, err := parsePartition(*partitionSpec)
	if err != nil {
		return err
	}
	if *joinRate > 0 && pe == nil {
		return fmt.Errorf("-join-rate requires -partition")
	}

	if *restorePath != "" {
		o, err := runRestore(out, reg, rec, fr, *restorePath)
		if err != nil {
			return err
		}
		if err := cliutil.WriteSnapshot(o, snapF); err != nil {
			return err
		}
		return finish()
	}

	if *driftRate > 0 {
		if *loss > 0 || *crashRate > 0 || pe != nil {
			return fmt.Errorf("-drift does not combine with -loss, -crash-rate, or -partition")
		}
		policy, err := omtree.ParseOverlayRepairPolicy(*repairPolicy)
		if err != nil {
			return err
		}
		o, err := runDrift(out, reg, rec, fr, *n, *degree, *seed, *driftRate, policy)
		if err != nil {
			return err
		}
		if err := cliutil.WriteSnapshot(o, snapF); err != nil {
			return err
		}
		return finish()
	}
	policySet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "repair-policy" {
			policySet = true
		}
	})
	if policySet {
		return fmt.Errorf("-repair-policy requires -drift")
	}

	if *loss > 0 || *crashRate > 0 || pe != nil {
		o, err := runFaulty(out, reg, rec, fr, *n, *degree, *packets, *failCount, *seed, *loss, *crashRate, pe, *joinRate)
		if err != nil {
			return err
		}
		if err := cliutil.WriteSnapshot(o, snapF); err != nil {
			return err
		}
		return finish()
	}
	// Register the protocol schema even on the reliable path, so every
	// snapshot carries the same counter set (zeros when no session ran).
	var sessionStats omtree.OverlaySessionStats
	omtree.RegisterSessionMetrics(reg, &sessionStats)

	var strategy omtree.RepairStrategy
	switch *repairFlag {
	case "grandparent":
		strategy = omtree.RepairGrandparent
	case "bestdelay":
		strategy = omtree.RepairBestDelay
	default:
		return fmt.Errorf("unknown repair strategy %q", *repairFlag)
	}

	r := omtree.NewRand(*seed)
	receivers := r.UniformDiskN(*n, 1)
	source := omtree.Point2{}
	res, err := omtree.Build(source, receivers,
		omtree.WithMaxOutDegree(*degree), omtree.WithObserver(reg),
		omtree.WithTrace(rec), omtree.WithFlight(fr))
	if err != nil {
		return err
	}
	dist := omtree.Dist(source, receivers)
	fmt.Fprintf(out, "tree: %d nodes, variant %v, k=%d, radius %.4f (bound %.4f)\n",
		res.Tree.N(), res.Variant, res.K, res.Radius, res.Bound)

	sim, err := omtree.NewSim(res.Tree, omtree.SimConfig{Latency: dist, ProcDelay: *procDelay, Obs: reg, Trace: rec})
	if err != nil {
		return err
	}
	d := sim.Multicast()
	fmt.Fprintf(out, "simulated delivery: max delay %.4f, %d forwards\n", d.MaxDelay, d.Forwards)
	if *procDelay == 0 && !almost(d.MaxDelay, res.Radius) {
		return fmt.Errorf("simulation disagrees with analytic radius: %v vs %v", d.MaxDelay, res.Radius)
	}

	if *failCount <= 0 {
		return finish()
	}

	// Fail the first internal (forwarding) nodes mid-session.
	var failed []int
	for i := 1; i < res.Tree.N() && len(failed) < *failCount; i++ {
		if res.Tree.OutDegree(i) > 0 {
			failed = append(failed, i)
		}
	}
	if len(failed) == 0 {
		return fmt.Errorf("no internal nodes to fail")
	}
	failures := make([]omtree.Failure, 0, len(failed))
	interval := 2 * res.Radius
	failTime := float64(*packets/2) * interval
	for _, f := range failed {
		failures = append(failures, omtree.Failure{Node: f, Time: failTime})
	}
	session := sim.Session(*packets, interval, failures)
	var affected, lostTotal int
	for i, lost := range session.Lost {
		if lost > 0 && i != res.Tree.Root() {
			affected++
			lostTotal += lost
		}
	}
	fmt.Fprintf(out, "failures: %d internal nodes at t=%.2f -> %d receivers lost %d packets total\n",
		len(failed), failTime, affected, lostTotal)

	rep, err := omtree.Repair(res.Tree, failed, *degree, dist, strategy)
	if err != nil {
		return err
	}
	repairedDist := func(a, b int) float64 { return dist(rep.OldID[a], rep.OldID[b]) }
	repairedRadius := rep.Tree.Radius(repairedDist)
	fmt.Fprintf(out, "repair (%s): %d orphan subtrees reattached, radius %.4f -> %.4f (%.1f%% change)\n",
		*repairFlag, rep.Reattached, res.Radius, repairedRadius,
		100*(repairedRadius-res.Radius)/res.Radius)

	repairedSim, err := omtree.NewSim(rep.Tree, omtree.SimConfig{Latency: repairedDist, ProcDelay: *procDelay, Obs: reg, Trace: rec})
	if err != nil {
		return err
	}
	d2 := repairedSim.Multicast()
	missing := 0
	for _, got := range d2.Received {
		if !got {
			missing++
		}
	}
	fmt.Fprintf(out, "post-repair delivery: max delay %.4f, %d survivors missing\n", d2.MaxDelay, missing)
	return finish()
}

// runRestore resumes a checkpointed protocol session: the snapshot is
// decoded and validated, maintenance continues on the recorded round clock
// until the strict audit passes again, and the resumed state is reported.
func runRestore(out io.Writer, reg *omtree.Observer, rec *omtree.TraceRecorder, fr *omtree.FlightRecorder, path string) (*omtree.Overlay, error) {
	o, err := omtree.RestoreOverlayFile(path)
	if err != nil {
		return nil, err
	}
	o.Observe(reg)
	o.Trace(rec)
	o.SetFlight(fr)
	st := &o.Stats
	fmt.Fprintf(out, "restored session: %d live members after %d maintenance rounds (%d joins, %d leaves, %d abrupt failures)\n",
		o.N(), st.MaintenanceRounds, st.Joins, st.Leaves, st.AbruptFailures)
	// The checkpoint may hold mid-churn damage (a crash the detector had not
	// confirmed yet); converge back to a clean audit on the recorded clock.
	rounds, err := o.Converge(24)
	if err != nil {
		return nil, err
	}
	radius, err := o.Radius()
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "resumed: audit clean after %d rounds (round clock now %d), radius %.4f\n",
		rounds, st.MaintenanceRounds, radius)
	return o, nil
}

// runDrift exercises the kinetic control loop: a reliably built overlay's
// coordinates jump under a seeded drift model while periodic re-estimation
// sweeps refresh them and the certificate monitor repairs per policy.
func runDrift(out io.Writer, reg *omtree.Observer, rec *omtree.TraceRecorder, fr *omtree.FlightRecorder, n, degree int, seed uint64, rate float64, policy omtree.OverlayRepairPolicy) (*omtree.Overlay, error) {
	const (
		period    = 3
		threshold = 1.05
		rounds    = 24
	)
	o, err := omtree.NewOverlay(omtree.OverlayConfig{
		Source: omtree.Point2{}, Scale: 1,
		K: omtree.SuggestOverlayK(n), MaxOutDegree: degree,
		Drift: omtree.OverlayDriftConfig{
			ReestimatePeriod:     period,
			DegradationThreshold: threshold,
			Policy:               policy,
		},
	})
	if err != nil {
		return nil, err
	}
	o.Observe(reg)
	o.Trace(rec)
	o.SetFlight(fr)
	r := omtree.NewRand(seed)
	for i := 0; i < n; i++ {
		if _, _, err := o.Join(r.UniformDisk(1)); err != nil {
			return nil, err
		}
	}
	if _, err := o.Rebuild(); err != nil {
		return nil, err
	}
	cert := o.Certificate()
	fmt.Fprintf(out, "kinetic drift: %d members, jump rate %.3f/epoch, policy %v, re-estimation every %d rounds\n",
		n, rate, policy, period)
	fmt.Fprintf(out, "certified at build: radius %.4f, eq. 7 bound %.4f\n", cert.Radius, cert.Bound)

	// Bound 0.99 keeps drifted positions strictly inside the membership's
	// outermost radius, so jumps relocate members between grid cells instead
	// of forcing grid-scale growth.
	m, err := omtree.NewDriftModel(omtree.DriftModelConfig{
		Seed: seed, JumpRate: rate, JumpMean: 0.15,
		InflationPerEpoch: 0.05, Bound: 0.99,
	})
	if err != nil {
		return nil, err
	}
	if err := o.SetDrift(m); err != nil {
		return nil, err
	}
	worst := 0.0
	for i := 0; i < rounds; i++ {
		ms, err := o.MaintenanceRound()
		if err != nil {
			return nil, err
		}
		if ms.CertRatio > worst {
			worst = ms.CertRatio
		}
	}

	st := &o.Stats
	fmt.Fprintf(out, "drift: %d re-estimation sweeps over %d rounds applied %d node moves\n",
		st.DriftReestimates, rounds, st.DriftedNodes)
	fmt.Fprintf(out, "repairs: %d local, %d full-rebuild fallbacks, %d rebuild messages + %d drift messages\n",
		st.LocalRepairs, st.FullRebuildFallbacks, st.RebuildMessages, st.DriftMessages)
	cert = o.Certificate()
	ratio, armed := o.CertificateRatio()
	if !armed {
		return nil, fmt.Errorf("certificate unarmed after %d rounds", rounds)
	}
	fmt.Fprintf(out, "certificate: realized radius %.4f vs certified %.4f (ratio %.3f, worst %.3f), eq. 7 bound %.4f\n",
		o.RealizedRadius(), cert.Radius, ratio, worst, cert.Bound)
	if err := o.Audit(); err != nil {
		return nil, fmt.Errorf("audit after drift run: %w", err)
	}
	fmt.Fprintln(out, "audit: clean")
	return o, nil
}

// parsePartition decodes a sides:start:heal schedule spec; an empty spec
// yields nil (no partition). Range validation happens in SetSchedule.
func parsePartition(s string) (*omtree.PartitionEvent, error) {
	if s == "" {
		return nil, nil
	}
	var pe omtree.PartitionEvent
	if _, err := fmt.Sscanf(s, "%d:%d:%d", &pe.Sides, &pe.Start, &pe.Heal); err != nil {
		return nil, fmt.Errorf("-partition: want sides:start:heal, got %q", s)
	}
	return &pe, nil
}

// runFaulty exercises the decentralized protocol over a fault-injected
// control plane and reports degradation and recovery. With a partition
// schedule it additionally splits the network mid-run, storms joins at the
// degraded overlay, and reports island formation and reconciliation.
func runFaulty(out io.Writer, reg *omtree.Observer, rec *omtree.TraceRecorder, fr *omtree.FlightRecorder, n, degree, packets, failCount int, seed uint64, loss, crashRate float64, pe *omtree.PartitionEvent, joinRate float64) (*omtree.Overlay, error) {
	fmt.Fprintf(out, "unreliable control plane: loss %.0f%%, duplication %.0f%%, crash rate %.2f%%\n",
		100*loss, 100*loss/2, 100*crashRate)

	o, err := omtree.NewOverlay(omtree.OverlayConfig{
		Source: omtree.Point2{}, Scale: 1,
		K: omtree.SuggestOverlayK(n), MaxOutDegree: degree,
	})
	if err != nil {
		return nil, err
	}
	plane, err := omtree.NewFaultPlane(omtree.FaultScenario{
		Seed: seed, LossRate: loss, DupRate: loss / 2,
		CrashRate: crashRate, DelayMean: 0.1,
	})
	if err != nil {
		return nil, err
	}
	fcfg := omtree.DefaultOverlayFaultConfig()
	if err := o.SetTransport(plane, fcfg); err != nil {
		return nil, err
	}
	o.Observe(reg)
	plane.Observe(reg)
	o.Trace(rec)
	o.SetFlight(fr)

	// Members join while the network misbehaves; some give up after
	// exhausting their retry budget.
	r := omtree.NewRand(seed)
	refused := 0
	live := make([]int, 0, n)
	for i := 0; i < n; i++ {
		id, _, err := o.Join(r.UniformDisk(1))
		if err != nil {
			refused++
			continue
		}
		live = append(live, id)
	}

	// Crash -fail members without warning, then run heartbeat rounds with
	// injection still active.
	crashed := 0
	for crashed < failCount && len(live) > 0 {
		pick := r.Intn(len(live))
		id := live[pick]
		live[pick] = live[len(live)-1]
		live = live[:len(live)-1]
		// A mid-operation crash may have taken the node already.
		if o.FailAbrupt(id) == nil {
			crashed++
		}
	}
	if pe == nil {
		for i := 0; i < 2; i++ {
			if _, err := o.MaintenanceRound(); err != nil {
				return nil, err
			}
		}
	} else {
		if err := plane.SetSchedule([]omtree.PartitionEvent{*pe}); err != nil {
			return nil, err
		}
		if joinRate > 0 {
			if err := o.SetAdmission(omtree.OverlayAdmission{RatePerRound: joinRate}); err != nil {
				return nil, err
			}
		}
		fmt.Fprintf(out, "partition: %d-way split at round %d, healing at round %d\n",
			pe.Sides, pe.Start, pe.Heal)
		// Run the schedule through its heal, storming joins while split.
		peak := 0
		for plane.Ticks() <= pe.Heal {
			ms, err := o.MaintenanceRound()
			if err != nil {
				return nil, err
			}
			if ms.Islands > peak {
				peak = ms.Islands
			}
			if t := plane.Ticks(); t >= pe.Start && t < pe.Heal {
				for i := 0; i < 3; i++ {
					o.Join(r.UniformDisk(1)) // degraded, queued, shed, or refused
				}
			}
		}
		fmt.Fprintf(out, "partition: peak %d islands; joins %d degraded, %d queued (%d admitted), %d shed; %d merges, %d reconciliations\n",
			peak, o.Stats.DegradedJoins, o.Stats.JoinsQueued, o.Stats.QueuedAdmitted,
			o.Stats.JoinsShed, o.Stats.IslandMerges, o.Stats.Reconciliations)
	}

	st := &o.Stats
	fmt.Fprintf(out, "joins: %d admitted, %d gave up; %d crashed by operator, %d mid-operation\n",
		n-refused, refused, crashed, st.InjectedCrashes)
	fmt.Fprintf(out, "transport: %d retries, %d timeouts, %d attempts lost, %d duplicates delivered\n",
		st.Retries, st.Timeouts, st.MessagesLost, st.DuplicatesDelivered)
	fmt.Fprintf(out, "degraded coverage: %.1f%% of live members reachable from the source\n",
		100*o.CoverageRatio())

	// Injection stops; the heartbeat detector converges the overlay back to
	// a clean audit.
	plane.SetActive(false)
	rounds, err := o.Converge(fcfg.ConfirmAfter + 12)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "self-heal: audit clean after %d rounds (%d false suspicions, %d false confirms, %d elections)\n",
		rounds, st.FalseSuspects, st.FalseConfirms, st.RepElections)

	// Data plane on the healed tree, links dropping at the same rate.
	t, pts, _, err := o.Snapshot()
	if err != nil {
		return nil, err
	}
	radius := t.Radius(func(i, j int) float64 { return pts[i].Dist(pts[j]) })
	sim, err := omtree.NewSim(t, omtree.SimConfig{
		Latency: func(i, j int) float64 { return pts[i].Dist(pts[j]) },
		Drop:    omtree.LinkDrop(seed^0xd07a, loss),
		Obs:     reg,
		Trace:   rec,
	})
	if err != nil {
		return nil, err
	}
	session := sim.Session(packets, 2*radius, nil)
	missed, drops, forwards := 0, 0, 0
	for _, l := range session.Lost {
		missed += l
	}
	for _, d := range session.Deliveries {
		drops += d.LinkDrops
		forwards += d.Forwards
	}
	ratio := 1.0
	if recvs := t.N() - 1; recvs > 0 {
		ratio = 1 - float64(missed)/float64(packets*recvs)
	}
	fmt.Fprintf(out, "data plane: %d members, radius %.4f; %d/%d transmissions dropped -> %.2f%% of deliveries made\n",
		t.N()-1, radius, drops, forwards, 100*ratio)
	return o, nil
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
