// Command omt-sim builds a minimum-delay multicast tree and runs the
// discrete-event overlay simulator over it: packet propagation, optional
// node failures, and subtree repair.
//
//	omt-sim -n 1000 -degree 6 -seed 1 -packets 5 -fail 3 -repair bestdelay
//
// It prints the simulated delivery (cross-checked against the analytic
// radius), the damage failures cause, and the post-repair delay.
package main

import (
	"flag"
	"fmt"
	"os"

	"omtree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "omt-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("omt-sim", flag.ContinueOnError)
	n := fs.Int("n", 1000, "number of receivers")
	degree := fs.Int("degree", 6, "max out-degree")
	seed := fs.Uint64("seed", 1, "random seed")
	packets := fs.Int("packets", 5, "packets per session")
	failCount := fs.Int("fail", 0, "number of internal nodes to fail mid-session")
	repairFlag := fs.String("repair", "bestdelay", "repair strategy: grandparent or bestdelay")
	procDelay := fs.Float64("proc", 0, "per-hop forwarding delay")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var strategy omtree.RepairStrategy
	switch *repairFlag {
	case "grandparent":
		strategy = omtree.RepairGrandparent
	case "bestdelay":
		strategy = omtree.RepairBestDelay
	default:
		return fmt.Errorf("unknown repair strategy %q", *repairFlag)
	}

	r := omtree.NewRand(*seed)
	receivers := r.UniformDiskN(*n, 1)
	source := omtree.Point2{}
	res, err := omtree.Build(source, receivers, omtree.WithMaxOutDegree(*degree))
	if err != nil {
		return err
	}
	dist := omtree.Dist(source, receivers)
	fmt.Printf("tree: %d nodes, variant %v, k=%d, radius %.4f (bound %.4f)\n",
		res.Tree.N(), res.Variant, res.K, res.Radius, res.Bound)

	sim, err := omtree.NewSim(res.Tree, omtree.SimConfig{Latency: dist, ProcDelay: *procDelay})
	if err != nil {
		return err
	}
	d := sim.Multicast()
	fmt.Printf("simulated delivery: max delay %.4f, %d forwards\n", d.MaxDelay, d.Forwards)
	if *procDelay == 0 && !almost(d.MaxDelay, res.Radius) {
		return fmt.Errorf("simulation disagrees with analytic radius: %v vs %v", d.MaxDelay, res.Radius)
	}

	if *failCount <= 0 {
		return nil
	}

	// Fail the first internal (forwarding) nodes mid-session.
	var failed []int
	for i := 1; i < res.Tree.N() && len(failed) < *failCount; i++ {
		if res.Tree.OutDegree(i) > 0 {
			failed = append(failed, i)
		}
	}
	if len(failed) == 0 {
		return fmt.Errorf("no internal nodes to fail")
	}
	failures := make([]omtree.Failure, 0, len(failed))
	interval := 2 * res.Radius
	failTime := float64(*packets/2) * interval
	for _, f := range failed {
		failures = append(failures, omtree.Failure{Node: f, Time: failTime})
	}
	session := sim.Session(*packets, interval, failures)
	var affected, lostTotal int
	for i, lost := range session.Lost {
		if lost > 0 && i != res.Tree.Root() {
			affected++
			lostTotal += lost
		}
	}
	fmt.Printf("failures: %d internal nodes at t=%.2f -> %d receivers lost %d packets total\n",
		len(failed), failTime, affected, lostTotal)

	rep, err := omtree.Repair(res.Tree, failed, *degree, dist, strategy)
	if err != nil {
		return err
	}
	repairedDist := func(a, b int) float64 { return dist(rep.OldID[a], rep.OldID[b]) }
	repairedRadius := rep.Tree.Radius(repairedDist)
	fmt.Printf("repair (%s): %d orphan subtrees reattached, radius %.4f -> %.4f (%.1f%% change)\n",
		*repairFlag, rep.Reattached, res.Radius, repairedRadius,
		100*(repairedRadius-res.Radius)/res.Radius)

	repairedSim, err := omtree.NewSim(rep.Tree, omtree.SimConfig{Latency: repairedDist, ProcDelay: *procDelay})
	if err != nil {
		return err
	}
	d2 := repairedSim.Multicast()
	missing := 0
	for _, got := range d2.Received {
		if !got {
			missing++
		}
	}
	fmt.Printf("post-repair delivery: max delay %.4f, %d survivors missing\n", d2.MaxDelay, missing)
	return nil
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
