package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file instead when -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-run with -update if intended)\n got:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestGoldenOutput locks down the exact CLI text for both the reliable
// build+fail+repair path and the fault-injected protocol path. Every input
// is seeded and the simulator is discrete-event, so the output is
// byte-deterministic; drift here means the build, simulation, or protocol
// changed behavior.
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"reliable", []string{"-n", "500", "-degree", "6", "-seed", "3",
			"-packets", "4", "-fail", "3", "-repair", "bestdelay"}},
		{"grandparent", []string{"-n", "300", "-degree", "2", "-seed", "5",
			"-packets", "4", "-fail", "2", "-repair", "grandparent"}},
		{"faulty", []string{"-n", "300", "-degree", "6", "-seed", "3",
			"-packets", "4", "-fail", "3", "-loss", "0.2", "-crash-rate", "0.01"}},
		{"partition", []string{"-n", "200", "-degree", "6", "-seed", "7",
			"-packets", "4", "-loss", "0.05", "-partition", "2:2:8", "-join-rate", "2"}},
		{"drift", []string{"-n", "800", "-degree", "6", "-seed", "9",
			"-drift", "0.003", "-repair-policy", "local"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, out.Bytes())
		})
	}
}
