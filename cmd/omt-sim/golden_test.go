package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file instead when -update is set.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s (re-run with -update if intended)\n got:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestGoldenOutput locks down the exact CLI text for both the reliable
// build+fail+repair path and the fault-injected protocol path. Every input
// is seeded and the simulator is discrete-event, so the output is
// byte-deterministic; drift here means the build, simulation, or protocol
// changed behavior.
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"reliable", []string{"-n", "500", "-degree", "6", "-seed", "3",
			"-packets", "4", "-fail", "3", "-repair", "bestdelay"}},
		{"grandparent", []string{"-n", "300", "-degree", "2", "-seed", "5",
			"-packets", "4", "-fail", "2", "-repair", "grandparent"}},
		{"faulty", []string{"-n", "300", "-degree", "6", "-seed", "3",
			"-packets", "4", "-fail", "3", "-loss", "0.2", "-crash-rate", "0.01"}},
		{"partition", []string{"-n", "200", "-degree", "6", "-seed", "7",
			"-packets", "4", "-loss", "0.05", "-partition", "2:2:8", "-join-rate", "2"}},
		{"drift", []string{"-n", "800", "-degree", "6", "-seed", "9",
			"-drift", "0.003", "-repair-policy", "local"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			if err := run(tc.args, &out); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, out.Bytes())
		})
	}
}

// TestGoldenSnapshot locks down the crash-safe checkpoint flow: the same
// seeded faulty run is checkpointed twice and the two snapshot files (and
// stdouts) must be byte-identical before the resumed session's output is
// compared against its golden file. Snapshot bytes are a pure function of
// session state, so divergence means wall-clock or map-order state leaked
// into the wire format.
func TestGoldenSnapshot(t *testing.T) {
	dir := t.TempDir()
	runOnce := func(path string) []byte {
		t.Helper()
		var out bytes.Buffer
		args := []string{"-n", "300", "-degree", "6", "-seed", "3",
			"-packets", "3", "-fail", "3", "-loss", "0.2", "-snapshot", path}
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	one, two := filepath.Join(dir, "one.omts"), filepath.Join(dir, "two.omts")
	out1 := runOnce(one)
	out2 := runOnce(two)
	if !bytes.Equal(out1, out2) {
		t.Fatalf("two runs diverged on stdout:\n run 1:\n%s\n run 2:\n%s", out1, out2)
	}
	blob1, err := os.ReadFile(one)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := os.ReadFile(two)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob1, blob2) {
		t.Fatal("two runs checkpointed different snapshot bytes")
	}
	var out bytes.Buffer
	if err := run([]string{"-restore", one}, &out); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "restore", out.Bytes())
}

// TestGoldenFlight locks down the flight recorder's two artifacts — the
// JSONL sample ring and the stdout health report — under the seeded drift
// scenario with the monitor-only policy, where the certificate SLO provably
// fires. The scenario is run twice and both artifacts must be byte-identical
// across runs before either is compared against its golden file: flight
// samples capture only the deterministic registry families, so any
// divergence means wall-clock state leaked into a sample.
func TestGoldenFlight(t *testing.T) {
	runOnce := func(path string) []byte {
		t.Helper()
		var out bytes.Buffer
		args := []string{"-n", "800", "-degree", "6", "-seed", "9",
			"-drift", "0.003", "-repair-policy", "none",
			"-flight", path, "-flight-interval", "2",
			"-slo", "cert: protocol/certificate_ratio > 1.15 for 2; sweeps: rate(protocol/maintenance_rounds) >= 1"}
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	dir := t.TempDir()
	out1 := runOnce(filepath.Join(dir, "one.jsonl"))
	out2 := runOnce(filepath.Join(dir, "two.jsonl"))
	jsonl1, err := os.ReadFile(filepath.Join(dir, "one.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	jsonl2, err := os.ReadFile(filepath.Join(dir, "two.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("two runs diverged on stdout:\n run 1:\n%s\n run 2:\n%s", out1, out2)
	}
	if !bytes.Equal(jsonl1, jsonl2) {
		t.Fatal("two runs diverged on the flight JSONL")
	}
	checkGolden(t, "flight", out1)
	checkGolden(t, "flight_jsonl", jsonl1)
}
