#!/bin/sh
# ci.sh — the repo's full gate: formatting, vet, the regular test suite,
# the race-detector run that guards the parallel build pipeline and the
# shared multi-group substrate, and short fuzz smokes over the codec,
# fault-schedule, partition-schedule, drift-schedule, incremental-rebuild,
# multi-group, SLO-rule, and snapshot round-trip fuzzers. `ci.sh bench`
# runs the benchmark regression gate instead.
set -eu

cd "$(dirname "$0")"

# `ci.sh bench` runs only the benchmark regression gate: a fresh snapshot
# (scripts/bench.sh) diffed against BENCH_baseline.json, failing on >2%
# ns/op regressions (override with BENCH_TOLERANCE). It is not part of the
# default gate because ns/op is too noisy on shared runners to block every
# PR on it.
if [ "${1:-}" = "bench" ]; then
    echo "== bench compare =="
    exec scripts/bench_compare.sh
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== coverage floors =="
# Checked-in floors for the packages whose correctness the rest of the repo
# leans on. Floors sit a few points below the coverage measured when each
# was set (grid was ~91% when its floor landed) so honest refactors pass
# but a PR that lands untested code fails.
check_cover() {
    pkg=$1 floor=$2
    pct=$(go test -cover "$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "coverage: no figure reported for $pkg" >&2
        exit 1
    fi
    if [ "$(printf '%s %s\n' "$pct" "$floor" | awk '{print ($1 < $2)}')" = 1 ]; then
        echo "coverage: $pkg at ${pct}% is below the ${floor}% floor" >&2
        exit 1
    fi
    echo "coverage: $pkg ${pct}% (floor ${floor}%)"
}
check_cover ./internal/obs 92
check_cover ./internal/obs/trace 90
check_cover ./internal/obs/flight 90
check_cover ./internal/core 89
check_cover ./internal/coords 92
check_cover ./internal/grid 90
check_cover ./internal/protocol 92
check_cover ./internal/multigroup 90
check_cover ./internal/snapshot 90

# Golden files (cmd/omt-sim and cmd/omt-experiments CLI output;
# internal/protocol trace timelines) are compared byte-for-byte by the
# regular test run above. After an INTENDED behavior or format change,
# regenerate with
#   go test ./cmd/omt-sim ./cmd/omt-experiments ./internal/protocol -update
# and review the diff — never hand-edit a .golden file.

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke =="
go test -run='^$' -fuzz='^FuzzWireRoundTrip$' -fuzztime=10s ./internal/core
go test -run='^$' -fuzz='^FuzzCodecRoundTrip$' -fuzztime=10s ./internal/tree
go test -run='^$' -fuzz='^FuzzFaultSchedule$' -fuzztime=10s ./internal/protocol
go test -run='^$' -fuzz='^FuzzPartitionSchedule$' -fuzztime=10s ./internal/protocol
go test -run='^$' -fuzz='^FuzzDriftSchedule$' -fuzztime=10s ./internal/protocol
go test -run='^$' -fuzz='^FuzzIncrementalRebuild$' -fuzztime=10s ./internal/protocol
go test -run='^$' -fuzz='^FuzzMultiGroup$' -fuzztime=10s ./internal/multigroup
go test -run='^$' -fuzz='^FuzzSLORules$' -fuzztime=10s ./internal/obs/flight
go test -run='^$' -fuzz='^FuzzSnapshotRoundTrip$' -fuzztime=10s ./internal/protocol

echo "ci: all green"
