#!/bin/sh
# ci.sh — the repo's full gate: formatting, vet, the regular test suite,
# the race-detector run that guards the parallel build pipeline, and
# short fuzz smokes over the codec and fault-schedule fuzzers.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== fuzz smoke =="
go test -run='^$' -fuzz='^FuzzWireRoundTrip$' -fuzztime=10s ./internal/core
go test -run='^$' -fuzz='^FuzzCodecRoundTrip$' -fuzztime=10s ./internal/tree
go test -run='^$' -fuzz='^FuzzFaultSchedule$' -fuzztime=10s ./internal/protocol

echo "ci: all green"
