#!/bin/sh
# ci.sh — the repo's full gate: formatting, vet, the regular test suite,
# and the race-detector run that guards the parallel build pipeline.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "ci: all green"
