module omtree

go 1.22
