package omtree_test

import (
	"math"
	"strings"
	"testing"

	"omtree"
)

func TestFacadeBuildQuickstart(t *testing.T) {
	r := omtree.NewRand(1)
	receivers := r.UniformDiskN(1000, 1)
	source := omtree.Point2{}

	res, err := omtree.Build(source, receivers)
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != omtree.VariantNatural || res.MaxOutDegree != 6 {
		t.Fatalf("variant %v degree %d", res.Variant, res.MaxOutDegree)
	}
	if err := res.Tree.Validate(6); err != nil {
		t.Fatal(err)
	}
	// The facade Dist helper matches the internal metric.
	dist := omtree.Dist(source, receivers)
	if got := res.Tree.Radius(dist); math.Abs(got-res.Radius) > 1e-9 {
		t.Errorf("radius %v vs reported %v", got, res.Radius)
	}
}

func TestFacadeBinaryAndOptions(t *testing.T) {
	r := omtree.NewRand(2)
	receivers := r.UniformDiskN(300, 1)
	res, err := omtree.Build(omtree.Point2{}, receivers,
		omtree.WithMaxOutDegree(2), omtree.WithKMax(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Variant != omtree.VariantBinary || res.K > 4 {
		t.Fatalf("variant %v K %d", res.Variant, res.K)
	}
}

func TestFacade3DAndND(t *testing.T) {
	r := omtree.NewRand(3)
	recv3 := r.UniformBall3N(400, 1)
	res3, err := omtree.Build3D(omtree.Point3{}, recv3)
	if err != nil {
		t.Fatal(err)
	}
	if res3.MaxOutDegree != 10 {
		t.Errorf("3-D natural degree = %d", res3.MaxOutDegree)
	}
	recvD := r.UniformBallDN(200, 4, 1)
	resD, err := omtree.BuildND(make(omtree.Vec, 4), recvD)
	if err != nil {
		t.Fatal(err)
	}
	if resD.MaxOutDegree != 18 {
		t.Errorf("4-D natural degree = %d", resD.MaxOutDegree)
	}
	if resD.Radius > resD.Bound {
		t.Error("radius above bound")
	}
	_ = omtree.Dist3D(omtree.Point3{}, recv3)
	_ = omtree.DistND(make(omtree.Vec, 4), recvD)
}

func TestFacadeBisection(t *testing.T) {
	r := omtree.NewRand(4)
	pts := r.UniformDiskN(200, 1)
	tr, rep, err := omtree.BuildBisection(pts, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(4); err != nil {
		t.Fatal(err)
	}
	dist := func(i, j int) float64 { return pts[i].Dist(pts[j]) }
	if tr.Radius(dist) > rep.PathBound+1e-9 {
		t.Error("radius above certified bound")
	}
}

func TestFacadeBaselinesAndExact(t *testing.T) {
	r := omtree.NewRand(5)
	pts := append([]omtree.Point2{{}}, r.UniformDiskN(6, 1)...)
	dist := func(i, j int) float64 { return pts[i].Dist(pts[j]) }
	n := len(pts)

	_, opt, err := omtree.ExactOptimal(n, 0, dist, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := omtree.GreedyClosest(n, 0, dist, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.Radius(dist) < opt-1e-9 {
		t.Error("greedy beat exact")
	}
	if _, err := omtree.Star(n, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := omtree.BalancedKary(n, 0, dist, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := omtree.BandwidthLatency(n, 0, dist, 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := omtree.RandomTree(n, 0, 2, r); err != nil {
		t.Fatal(err)
	}
	if omtree.MaxExactNodes < 8 {
		t.Error("exact limit suspiciously low")
	}
}

func TestFacadeSimAndRepair(t *testing.T) {
	r := omtree.NewRand(6)
	receivers := r.UniformDiskN(300, 1)
	source := omtree.Point2{}
	res, err := omtree.Build(source, receivers)
	if err != nil {
		t.Fatal(err)
	}
	dist := omtree.Dist(source, receivers)
	sim, err := omtree.NewSim(res.Tree, omtree.SimConfig{Latency: dist})
	if err != nil {
		t.Fatal(err)
	}
	d := sim.Multicast()
	if math.Abs(d.MaxDelay-res.Radius) > 1e-9 {
		t.Errorf("simulated %v vs radius %v", d.MaxDelay, res.Radius)
	}

	victim := int(res.Tree.Children(0)[0])
	rep, err := omtree.Repair(res.Tree, []int{victim}, 6, dist, omtree.RepairBestDelay)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tree.N() != res.Tree.N()-1 {
		t.Error("repair size wrong")
	}
}

func TestFacadeCoordinatesPipeline(t *testing.T) {
	// The full paper pipeline: synthetic delays -> embedding -> tree.
	r := omtree.NewRand(7)
	hosts := r.UniformDiskN(30, 1)
	m, err := omtree.EuclideanMatrix(hosts, 0, omtree.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	emb, err := omtree.Embed(m, omtree.EmbedConfig{Dim: 2, Landmarks: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	src := emb.Coords[0]
	receivers := make([]omtree.Vec, 0, len(hosts)-1)
	for i := 1; i < len(hosts); i++ {
		receivers = append(receivers, emb.Coords[i])
	}
	res, err := omtree.BuildND(src, receivers, omtree.WithMaxOutDegree(4))
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the tree against the TRUE delays.
	trueDist := func(i, j int) float64 {
		oi, oj := 0, 0
		if i > 0 {
			oi = i
		}
		if j > 0 {
			oj = j
		}
		return m.At(oi, oj)
	}
	trueRadius := res.Tree.Radius(trueDist)
	if trueRadius <= 0 {
		t.Error("no measured radius")
	}
	// With a noise-free Euclidean matrix, the embedded estimate is close to
	// the true delay.
	if math.Abs(trueRadius-res.Radius) > 0.3*trueRadius {
		t.Errorf("embedded radius %v far from true %v", res.Radius, trueRadius)
	}
	errs := omtree.EmbeddingErrors(m, emb)
	if len(errs) == 0 {
		t.Error("no embedding errors returned")
	}
}

func TestFacadeTransitStub(t *testing.T) {
	m, err := omtree.TransitStub(omtree.TransitStubConfig{
		TransitRouters: 4, StubsPerRouter: 2, HostsPerStub: 2,
	}, omtree.NewRand(10))
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 16 {
		t.Errorf("hosts = %d", m.N())
	}
	if _, err := omtree.NewDelayMatrix(4); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeNewSurface(t *testing.T) {
	r := omtree.NewRand(20)
	pts := r.UniformDiskN(100, 1)

	// Square bisection.
	trSq, repSq, err := omtree.BuildBisectionSquare(pts, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := trSq.Validate(4); err != nil {
		t.Fatal(err)
	}
	dist := func(i, j int) float64 { return pts[i].Dist(pts[j]) }
	if trSq.Radius(dist) > repSq.PathBound+1e-9 {
		t.Error("square bisection exceeded its bound")
	}

	// Min diameter.
	dres, err := omtree.BuildMinDiameter(pts)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Diameter <= 0 || dres.Diameter > 2*dres.Build.Radius+1e-9 {
		t.Errorf("diameter %v vs radius %v", dres.Diameter, dres.Build.Radius)
	}

	// SVG rendering through the facade.
	res, err := omtree.Build(omtree.Point2{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	all := append([]omtree.Point2{{}}, pts...)
	var svg strings.Builder
	if err := omtree.RenderSVG(&svg, res.Tree, all, omtree.VizOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "<svg") {
		t.Error("no SVG emitted")
	}

	// Overlay via facade.
	ov, err := omtree.NewOverlay(omtree.OverlayConfig{
		Source: omtree.Point2{}, Scale: 1, K: omtree.SuggestOverlayK(100), MaxOutDegree: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if _, _, err := ov.Join(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ov.Optimize(); err != nil {
		t.Fatal(err)
	}
	if _, err := ov.Rebuild(); err != nil {
		t.Fatal(err)
	}
	radius, err := ov.Radius()
	if err != nil {
		t.Fatal(err)
	}
	if radius <= 0 {
		t.Error("no radius")
	}
}

func TestFacadeBuildState(t *testing.T) {
	r := omtree.NewRand(9)
	source := omtree.Point2{}
	bs, err := omtree.NewBuildState(source)
	if err != nil {
		t.Fatal(err)
	}
	receivers := r.UniformDiskN(500, 1)
	for i, p := range receivers {
		bs.Add(i+1, p)
	}
	res, full, err := bs.Rebuild()
	if err != nil || !full {
		t.Fatalf("first rebuild: full=%v err=%v", full, err)
	}
	want, err := omtree.Build(source, receivers)
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != want.Radius || res.K != want.K {
		t.Fatalf("retained build differs: %+v vs %+v", res, want)
	}
	// Churn a little and rebuild incrementally: still equal to a fresh build.
	bs.Remove(3)
	bs.Add(len(receivers)+1, r.UniformDisk(1))
	res, full, err = bs.Rebuild()
	if err != nil || full {
		t.Fatalf("churn rebuild: full=%v err=%v", full, err)
	}
	if want := len(receivers) + 1; res.Tree.N() != want { // -1 removed, +1 added, +source
		t.Fatalf("tree has %d nodes, want %d", res.Tree.N(), want)
	}
	if err := res.Tree.Validate(res.MaxOutDegree); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMultiGroup(t *testing.T) {
	r := omtree.NewRand(11)
	hosts := r.UniformDiskN(400, 1)
	reg := omtree.NewObserver()
	sub, err := omtree.NewSubstrate(hosts, omtree.WithSubstrateObserver(reg))
	if err != nil {
		t.Fatal(err)
	}
	// Two groups with overlapping memberships on one substrate; each build
	// equals the stand-alone Build over the same members.
	var groups []*omtree.GroupTree
	for gi := 0; gi < 2; gi++ {
		g, err := sub.NewGroup(omtree.GroupConfig{
			Source: []float64{0, 0}, MaxOutDegree: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		for h := gi * 100; h < gi*100+250; h++ {
			if err := g.Join(h); err != nil {
				t.Fatal(err)
			}
		}
		groups = append(groups, g)
	}
	for _, g := range groups {
		res, full, err := g.Build()
		if err != nil || !full {
			t.Fatalf("build: full=%v err=%v", full, err)
		}
		members := g.Members()
		recv := make([]omtree.Point2, len(members))
		for i, h := range members {
			recv[i] = sub.Host2(h)
		}
		want, err := omtree.Build(omtree.Point2{}, recv, omtree.WithMaxOutDegree(6))
		if err != nil {
			t.Fatal(err)
		}
		if res.Radius != want.Radius || res.K != want.K {
			t.Fatalf("shared-substrate build differs: %+v vs %+v", res, want)
		}
	}
	if sub.Views() != 1 {
		t.Errorf("views = %d, want 1 (both groups share one source)", sub.Views())
	}

	// Group set of live sessions through the facade.
	gs, err := omtree.NewOverlayGroupSet(nil, omtree.OverlayFaultConfig{}, reg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"news", "music"} {
		if _, err := gs.Create(name, omtree.OverlayConfig{Scale: 1, K: 3, MaxOutDegree: 6}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		p := r.UniformDisk(1)
		for _, name := range gs.Names() {
			if _, _, err := gs.Join(name, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := gs.MaintenanceAll(); err != nil {
		t.Fatal(err)
	}
	for _, name := range gs.Names() {
		if err := gs.Group(name).Audit(); err != nil {
			t.Fatalf("group %s: %v", name, err)
		}
	}
}
